package certlint

import (
	"bytes"
	"sort"
	"time"

	"securepki/internal/obs"
	"securepki/internal/parallel"
	"securepki/internal/x509lite"
)

// Options configures a corpus run.
type Options struct {
	// Workers is the parallel worker knob; <= 0 means GOMAXPROCS. Findings
	// are byte-identical at every setting.
	Workers int
	// Config holds certlint.json adjustments; nil means defaults.
	Config *Config
	// Obs receives lint.* metrics; nil disables them.
	Obs *obs.Registry
	// Now supplies wall-clock readings for the volatile throughput metric.
	// Commands inject time.Now; libraries and tests leave it nil, which
	// skips the measurement entirely (internal packages never read the
	// clock themselves — the repolint wallclock rule).
	Now func() time.Time
}

// CertFindings pairs one certificate's fingerprint with its sorted findings.
type CertFindings struct {
	Fingerprint x509lite.Fingerprint
	Findings    []Finding
}

// RunCert lints one certificate: every enabled, applicable linter in ID
// order, findings sorted by (LintID, Severity). The sort is part of the
// persisted-format contract — see Severity.
func (r *Registry) RunCert(c *x509lite.Certificate, ctx *Context, cfg *Config) []Finding {
	profiles := ProfilesOf(c)
	var out []Finding
	var subject, issuer string
	named := false
	for _, i := range r.sortedIndexes() {
		l := r.linters[i]
		if lc := cfg.lintConfig(l.ID); lc != nil && lc.Disabled {
			continue
		}
		if mask := cfg.effectiveProfiles(l); mask != ProfileAll && mask&profiles == 0 {
			continue
		}
		detail, hit := r.runCheck(i, l, c, ctx)
		if !hit {
			continue
		}
		if cfg != nil {
			if !named {
				subject, issuer = c.Subject.String(), c.Issuer.String()
				named = true
			}
			if cfg.suppressed(l.ID, subject, issuer) {
				continue
			}
		}
		out = append(out, Finding{LintID: l.ID, Version: l.Version, Severity: l.Severity, Detail: detail})
	}
	sortFindings(out)
	return out
}

// runCheck invokes one linter's check, honouring its declared concurrency.
func (r *Registry) runCheck(i int, l Linter, c *x509lite.Certificate, ctx *Context) (string, bool) {
	if g := r.gate(i); g != nil {
		g <- struct{}{}
		defer func() { <-g }()
	}
	return l.Check(c, ctx)
}

// sortFindings orders findings by (LintID, Severity) — the stable order
// every consumer (reports, the findings column, the goldens) relies on.
func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(a, b int) bool {
		if fs[a].LintID != fs[b].LintID {
			return fs[a].LintID < fs[b].LintID
		}
		return fs[a].Severity < fs[b].Severity
	})
}

// RunCorpus lints a population through the worker pool and returns per-cert
// findings sorted by fingerprint. The output is byte-identical at any worker
// count: each certificate is linted independently, parallel.Map preserves
// input order, and the final fingerprint sort erases any residual input
// ordering. Metrics are counted after the barrier so they are stable too;
// only the lint.certs_per_sec histogram is volatile (and only measured when
// Options.Now is injected).
func (r *Registry) RunCorpus(certs []*x509lite.Certificate, ctx *Context, opts Options) []CertFindings {
	var start time.Time
	if opts.Now != nil {
		start = opts.Now()
	}

	results := parallel.Map(opts.Workers, len(certs), func(i int) CertFindings {
		c := certs[i]
		return CertFindings{
			Fingerprint: c.Fingerprint(),
			Findings:    r.RunCert(c, ctx, opts.Config),
		}
	})
	sort.SliceStable(results, func(a, b int) bool {
		return bytes.Compare(results[a].Fingerprint[:], results[b].Fingerprint[:]) < 0
	})

	if reg := opts.Obs; reg != nil {
		reg.Gauge("lint.linters").Set(int64(r.Len()))
		reg.Counter("lint.certs").Add(int64(len(results)))
		var bySev [NumSeverities]int64
		var total int64
		for _, cf := range results {
			for _, f := range cf.Findings {
				bySev[f.Severity]++
				total++
			}
		}
		reg.Counter("lint.findings").Add(total)
		reg.Counter("lint.findings.info").Add(bySev[Info])
		reg.Counter("lint.findings.warn").Add(bySev[Warn])
		reg.Counter("lint.findings.error").Add(bySev[Error])
		reg.Counter("lint.findings.fatal").Add(bySev[Fatal])
		if opts.Now != nil {
			if secs := opts.Now().Sub(start).Seconds(); secs > 0 {
				reg.Histogram("lint.certs_per_sec", nil, obs.Volatile).
					Observe(int64(float64(len(results)) / secs))
			}
		}
	}
	return results
}
