package certlint

import (
	"bytes"
	"crypto/ed25519"
	"encoding/binary"
	"fmt"
	"math/big"
	"testing"
	"time"

	"securepki/internal/obs"
	"securepki/internal/x509lite"
)

// corpusCerts builds a deterministic varied population: every pathology in
// the battery shows up on an index-derived schedule, and a fraction of
// certificates share one public key so key_shared has something to find.
func corpusCerts(t testing.TB, n int) ([]*x509lite.Certificate, *Context) {
	t.Helper()
	sharedSeed := make([]byte, ed25519.SeedSize)
	sharedSeed[0] = 0xAB
	certs := make([]*x509lite.Certificate, 0, n)
	for i := 0; i < n; i++ {
		seed := make([]byte, ed25519.SeedSize)
		binary.LittleEndian.PutUint64(seed, uint64(i)+1)
		if i%9 == 0 {
			copy(seed, sharedSeed)
		}
		priv := ed25519.NewKeyFromSeed(seed)
		pub := priv.Public().(ed25519.PublicKey)

		tmpl := &x509lite.Template{
			Version:      3,
			SerialNumber: big.NewInt(int64(i) + 1000),
			Subject:      x509lite.Name{CommonName: fmt.Sprintf("device-%d.example", i)},
			Issuer:       x509lite.Name{Organization: "Fleet", CommonName: "Fleet Device CA"},
			NotBefore:    time.Date(2013, 3, 1, 0, 0, 0, 0, time.UTC),
			NotAfter:     time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC),
			DNSNames:     []string{fmt.Sprintf("device-%d.example", i)},
			OCSPServer:   []string{"http://ocsp.example"},
		}
		switch i % 5 {
		case 1:
			tmpl.Subject.CommonName = fmt.Sprintf("192.168.%d.%d", i%250, i%200+1)
			tmpl.DNSNames = nil
		case 2:
			tmpl.NotAfter = tmpl.NotBefore.AddDate(0, 0, -(i%30 + 1))
		case 3:
			tmpl.Subject = x509lite.Name{}
			tmpl.OCSPServer = nil
		case 4:
			tmpl.Subject.CommonName = "SecureGate VPN"
			tmpl.OCSPServer = nil
		}
		if i%7 == 0 {
			tmpl.Version = 1
		}
		if i%13 == 0 {
			tmpl.ForceGeneralizedTime = true
		}

		der, err := x509lite.CreateCertificate(tmpl, pub, priv)
		if err != nil {
			t.Fatal(err)
		}
		c, err := x509lite.Parse(der)
		if err != nil {
			t.Fatal(err)
		}
		certs = append(certs, c)
	}

	ctx := &Context{KeyCount: make(map[x509lite.Fingerprint]int)}
	for _, c := range certs {
		ctx.KeyCount[c.PublicKeyFingerprint()]++
	}
	return certs, ctx
}

// renderCorpus serialises corpus findings to the byte form the equivalence
// tests compare.
func renderCorpus(results []CertFindings) []byte {
	var b bytes.Buffer
	for _, cf := range results {
		fmt.Fprintf(&b, "%s\n", cf.Fingerprint)
		for _, f := range cf.Findings {
			fmt.Fprintf(&b, "  %s\n", f)
		}
	}
	return b.Bytes()
}

// TestRunCorpusWorkerEquivalence is the determinism golden: the serial run
// and every parallel run must render to identical bytes.
func TestRunCorpusWorkerEquivalence(t *testing.T) {
	certs, ctx := corpusCerts(t, 211)
	want := renderCorpus(Default().RunCorpus(certs, ctx, Options{Workers: 1}))
	if len(want) == 0 {
		t.Fatal("serial run produced no output")
	}
	for _, workers := range []int{2, 4, 16} {
		got := renderCorpus(Default().RunCorpus(certs, ctx, Options{Workers: workers}))
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d output differs from serial run", workers)
		}
	}
}

// TestRunCorpusSortedByFingerprint pins the output order contract.
func TestRunCorpusSortedByFingerprint(t *testing.T) {
	certs, ctx := corpusCerts(t, 64)
	results := Default().RunCorpus(certs, ctx, Options{Workers: 4})
	if len(results) != len(certs) {
		t.Fatalf("got %d results for %d certs", len(results), len(certs))
	}
	for i := 1; i < len(results); i++ {
		if bytes.Compare(results[i-1].Fingerprint[:], results[i].Fingerprint[:]) > 0 {
			t.Fatalf("results not sorted by fingerprint at %d", i)
		}
	}
}

// TestRunCorpusMetrics checks the stable lint.* metrics and that the
// volatile throughput histogram only appears when a clock is injected.
func TestRunCorpusMetrics(t *testing.T) {
	certs, ctx := corpusCerts(t, 97)
	reg := obs.NewRegistry()
	results := Default().RunCorpus(certs, ctx, Options{Workers: 4, Obs: reg})

	if got := reg.Counter("lint.certs").Value(); got != int64(len(certs)) {
		t.Errorf("lint.certs = %d, want %d", got, len(certs))
	}
	if got := reg.Gauge("lint.linters").Value(); got != int64(Default().Len()) {
		t.Errorf("lint.linters = %d, want %d", got, Default().Len())
	}
	var wantFindings, wantErr int64
	for _, cf := range results {
		for _, f := range cf.Findings {
			wantFindings++
			if f.Severity == Error {
				wantErr++
			}
		}
	}
	if wantFindings == 0 {
		t.Fatal("corpus produced no findings")
	}
	if got := reg.Counter("lint.findings").Value(); got != wantFindings {
		t.Errorf("lint.findings = %d, want %d", got, wantFindings)
	}
	if got := reg.Counter("lint.findings.error").Value(); got != wantErr {
		t.Errorf("lint.findings.error = %d, want %d", got, wantErr)
	}
	sum := reg.Counter("lint.findings.info").Value() +
		reg.Counter("lint.findings.warn").Value() +
		reg.Counter("lint.findings.error").Value() +
		reg.Counter("lint.findings.fatal").Value()
	if sum != wantFindings {
		t.Errorf("severity counters sum to %d, want %d", sum, wantFindings)
	}
	if n := reg.Histogram("lint.certs_per_sec", nil, obs.Volatile).Count(); n != 0 {
		t.Errorf("throughput histogram observed %d times without a clock", n)
	}

	// With an injected fake clock the volatile histogram gets one sample.
	clock := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	now := func() time.Time {
		clock = clock.Add(250 * time.Millisecond)
		return clock
	}
	Default().RunCorpus(certs, ctx, Options{Workers: 4, Obs: reg, Now: now})
	if n := reg.Histogram("lint.certs_per_sec", nil, obs.Volatile).Count(); n != 1 {
		t.Errorf("throughput histogram observed %d times with a clock, want 1", n)
	}
}

// BenchmarkLintCorpus measures registry throughput; `make bench` records the
// certs/sec figure into BENCH_snapshot.json.
func BenchmarkLintCorpus(b *testing.B) {
	certs, ctx := corpusCerts(b, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Default().RunCorpus(certs, ctx, Options{Workers: 0})
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N*len(certs))/secs, "certs/sec")
	}
}
