package certlint

import (
	"sort"
	"strings"

	"securepki/internal/x509lite"
)

// Profile is a bitmask of applicability classes. Every certificate carries
// exactly one structural profile (leaf / subordinate / root, judged from
// basicConstraints and self-issuance the way pkimetal's ProfileId groups do)
// plus exactly one device-class profile mapped from the devicesim population
// (the same issuer/subject rule base analysis.ClassifyDevice codifies from
// the paper's Table 4). A linter declares the union of profiles it applies
// to; zero means "every certificate".
type Profile uint16

// Structural profiles.
const (
	ProfileLeaf Profile = 1 << iota
	ProfileSubordinate
	ProfileRoot

	// Device-class profiles, mapped from the devicesim population.
	ProfileRouter
	ProfileStorage
	ProfileVPN
	ProfileFirewall
	ProfileCamera
	ProfileRemoteAdmin
	ProfileOtherDevice
	ProfileUnknownDevice
)

// ProfileAll is the zero mask: applicable to every certificate.
const ProfileAll Profile = 0

// profileNames maps each bit to its stable config-file name.
var profileNames = map[Profile]string{
	ProfileLeaf:          "leaf",
	ProfileSubordinate:   "subordinate",
	ProfileRoot:          "root",
	ProfileRouter:        "router",
	ProfileStorage:       "storage",
	ProfileVPN:           "vpn",
	ProfileFirewall:      "firewall",
	ProfileCamera:        "camera",
	ProfileRemoteAdmin:   "remote-admin",
	ProfileOtherDevice:   "other-device",
	ProfileUnknownDevice: "unknown-device",
}

// String renders the mask as a sorted comma-joined name list; the zero mask
// renders as "all".
func (p Profile) String() string {
	if p == ProfileAll {
		return "all"
	}
	var names []string
	for bit, name := range profileNames {
		if p&bit != 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

// ParseProfile resolves one config-file profile name to its bit.
func ParseProfile(name string) (Profile, bool) {
	switch name {
	case "all":
		return ProfileAll, true
	case "leaf":
		return ProfileLeaf, true
	case "subordinate":
		return ProfileSubordinate, true
	case "root":
		return ProfileRoot, true
	case "router":
		return ProfileRouter, true
	case "storage":
		return ProfileStorage, true
	case "vpn":
		return ProfileVPN, true
	case "firewall":
		return ProfileFirewall, true
	case "camera":
		return ProfileCamera, true
	case "remote-admin":
		return ProfileRemoteAdmin, true
	case "other-device":
		return ProfileOtherDevice, true
	case "unknown-device":
		return ProfileUnknownDevice, true
	}
	return 0, false
}

// deviceClassRule maps substring patterns over the lower-cased issuer CN,
// subject CN and SANs to a device-class profile. Rules are ordered; first
// match wins — the same discipline as analysis.ClassifyDevice, restated here
// so the lint layer stays a leaf beside x509lite.
type deviceClassRule struct {
	profile  Profile
	patterns []string
}

var deviceClassRules = []deviceClassRule{
	{ProfileVPN, []string{"vpn", "securegate", "ike", "ipsec"}},
	{ProfileFirewall, []string{"fw ", "firewall", "perimeter"}},
	{ProfileStorage, []string{"wd2go", "remotewd", "mycloud", "nas", "storage"}},
	{ProfileCamera, []string{"ipcam", "camera", "netcam", "dvr"}},
	{ProfileRemoteAdmin, []string{"vmware", "ilo", "idrac", "appliance", "esx", "management"}},
	{ProfileOtherDevice, []string{"printer", "iptv", "ip phone", "voip", "embedded https"}},
	{ProfileRouter, []string{"fritz", "lancom", "router", "gateway", "dsl", "cable modem", "192.168.", "10.0.", "myfritz"}},
}

// ProfilesOf derives the certificate's profile mask: one structural bit plus
// one device-class bit. It is a pure function of the certificate, so lint
// applicability never depends on worker count or population order.
func ProfilesOf(c *x509lite.Certificate) Profile {
	var p Profile
	switch {
	case !c.IsCA:
		p = ProfileLeaf
	case c.SelfIssued():
		p = ProfileRoot
	default:
		p = ProfileSubordinate
	}

	hay := strings.ToLower(c.Issuer.CommonName + " | " + c.Subject.CommonName)
	for _, dns := range c.DNSNames {
		hay += " | " + strings.ToLower(dns)
	}
	for _, rule := range deviceClassRules {
		for _, pat := range rule.patterns {
			if strings.Contains(hay, pat) {
				return p | rule.profile
			}
		}
	}
	if looksLikeIPv4(c.Subject.CommonName) {
		return p | ProfileRouter
	}
	return p | ProfileUnknownDevice
}
