package certlint

import (
	"fmt"
	"time"

	"securepki/internal/x509lite"
)

// registerPaperLints installs the checks ported from the original battery:
// the paper's §4/§5 invalid-certificate taxonomy. IDs are unchanged from the
// pre-registry linter so persisted findings stay comparable; severities were
// migrated per the table on Severity (Notice→INFO, Warning→WARN,
// Error→ERROR), with version_bogus promoted to FATAL because strict parsers
// reject those certificates outright.
func registerPaperLints(r *Registry) {
	r.MustRegister(Linter{
		ID: "validity_negative", Version: 1, Severity: Error,
		Describe: "NotAfter precedes NotBefore (5.38% of the paper's invalid certs)",
		Check: func(c *x509lite.Certificate, _ *Context) (string, bool) {
			if d := c.ValidityDays(); d < 0 {
				return fmt.Sprintf("validity is %.0f days", d), true
			}
			return "", false
		},
	})
	r.MustRegister(Linter{
		ID: "validity_excessive", Version: 1, Severity: Info,
		Describe: "validity period over 10 years (invalid median was 20y)",
		Check: func(c *x509lite.Certificate, _ *Context) (string, bool) {
			if d := c.ValidityDays(); d > 3653 {
				return fmt.Sprintf("validity is %.1f years", d/365.25), true
			}
			return "", false
		},
	})
	r.MustRegister(Linter{
		ID: "validity_beyond_y3000", Version: 1, Severity: Warn,
		Describe: "NotAfter in the year 3000 or later",
		Check: func(c *x509lite.Certificate, _ *Context) (string, bool) {
			if c.NotAfter.Year() >= 3000 {
				return fmt.Sprintf("NotAfter is %d", c.NotAfter.Year()), true
			}
			return "", false
		},
	})
	r.MustRegister(Linter{
		ID: "subject_empty", Version: 1, Severity: Warn,
		Describe: "entirely empty subject (925k certs in the paper)",
		Check: func(c *x509lite.Certificate, _ *Context) (string, bool) {
			if c.Subject.Empty() {
				return "subject has no attributes", true
			}
			return "", false
		},
	})
	r.MustRegister(Linter{
		ID: "subject_private_ip", Version: 1, Severity: Warn,
		Describe: "Common Name is a private (RFC 1918) address",
		Check: func(c *x509lite.Certificate, _ *Context) (string, bool) {
			if isPrivateIPString(c.Subject.CommonName) {
				return "CN " + c.Subject.CommonName, true
			}
			return "", false
		},
	})
	r.MustRegister(Linter{
		ID: "subject_ip", Version: 1, Severity: Info,
		Describe: "Common Name is a literal IP address (46.9% of the paper's CNs)",
		Check: func(c *x509lite.Certificate, _ *Context) (string, bool) {
			cn := c.Subject.CommonName
			if looksLikeIPv4(cn) && !isPrivateIPString(cn) {
				return "CN " + cn, true
			}
			return "", false
		},
	})
	r.MustRegister(Linter{
		// The pre-registry check tested IsCA inline; the registry expresses
		// the same applicability through the profile mask instead.
		ID: "san_missing", Version: 2, Severity: Warn,
		Describe: "leaf certificate without a Subject Alternative Name",
		Profiles: ProfileLeaf,
		Check: func(c *x509lite.Certificate, _ *Context) (string, bool) {
			if len(c.DNSNames) == 0 && len(c.IPAddresses) == 0 {
				return "no SAN extension", true
			}
			return "", false
		},
	})
	r.MustRegister(Linter{
		ID: "revocation_missing", Version: 1, Severity: Info,
		Describe: "no CRL, OCSP or AIA endpoint (99%+ of invalid certs)",
		Check: func(c *x509lite.Certificate, _ *Context) (string, bool) {
			if len(c.CRLDistributionPoints) == 0 && len(c.OCSPServer) == 0 && len(c.IssuingCertificateURL) == 0 {
				return "no revocation endpoints", true
			}
			return "", false
		},
	})
	r.MustRegister(Linter{
		ID: "version_bogus", Version: 2, Severity: Fatal,
		Describe: "X.509 version other than 1 or 3 (the paper saw 2, 4, 13)",
		Check: func(c *x509lite.Certificate, _ *Context) (string, bool) {
			if c.Version != 1 && c.Version != 3 {
				return fmt.Sprintf("version %d", c.Version), true
			}
			return "", false
		},
	})
	r.MustRegister(Linter{
		ID: "version_v1_leaf", Version: 2, Severity: Warn,
		Describe: "version 1 leaf certificate (cannot distinguish CA from leaf)",
		Profiles: ProfileLeaf,
		Check: func(c *x509lite.Certificate, _ *Context) (string, bool) {
			if c.Version == 1 {
				return "v1 certificate", true
			}
			return "", false
		},
	})
	r.MustRegister(Linter{
		ID: "notbefore_ancient", Version: 1, Severity: Warn,
		Describe: "NotBefore before 2008 (firmware epoch clocks)",
		Check: func(c *x509lite.Certificate, _ *Context) (string, bool) {
			if c.NotBefore.Year() > 1 && c.NotBefore.Before(time.Date(2008, 1, 1, 0, 0, 0, 0, time.UTC)) {
				return "NotBefore " + c.NotBefore.Format("2006-01-02"), true
			}
			return "", false
		},
	})
	r.MustRegister(Linter{
		ID: "self_signed", Version: 1, Severity: Info,
		Describe: "certificate verifies under its own key",
		Check: func(c *x509lite.Certificate, _ *Context) (string, bool) {
			if c.SelfSigned() {
				return "self-signed", true
			}
			return "", false
		},
	})
	r.MustRegister(Linter{
		ID: "key_shared", Version: 1, Severity: Error,
		Describe: "public key appears in other certificates (47% of the paper's invalid certs)",
		Check: func(c *x509lite.Certificate, ctx *Context) (string, bool) {
			if ctx == nil || ctx.KeyCount == nil {
				return "", false
			}
			if n := ctx.KeyCount[c.PublicKeyFingerprint()]; n > 1 {
				return fmt.Sprintf("key shared by %d certificates", n), true
			}
			return "", false
		},
	})
}
