package certlint

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"securepki/internal/x509lite"
)

func okLinter(id string) Linter {
	return Linter{
		ID: id, Version: 1, Severity: Info, Describe: "test linter",
		Check: func(*x509lite.Certificate, *Context) (string, bool) { return "", false },
	}
}

func TestRegisterContract(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(okLinter("a")); err != nil {
		t.Fatalf("valid linter rejected: %v", err)
	}

	bad := []struct {
		name   string
		mutate func(*Linter)
	}{
		{"empty ID", func(l *Linter) { l.ID = "" }},
		{"duplicate ID", func(l *Linter) { l.ID = "a" }},
		{"zero version", func(l *Linter) { l.Version = 0 }},
		{"negative version", func(l *Linter) { l.Version = -3 }},
		{"severity out of range", func(l *Linter) { l.Severity = Severity(9) }},
		{"no description", func(l *Linter) { l.Describe = "" }},
		{"no check", func(l *Linter) { l.Check = nil }},
		{"negative instances", func(l *Linter) { l.NumInstances = -1 }},
	}
	for _, tc := range bad {
		l := okLinter("b")
		tc.mutate(&l)
		if err := r.Register(l); err == nil {
			t.Errorf("%s: Register accepted invalid linter", tc.name)
		}
	}
	if r.Len() != 1 {
		t.Fatalf("registry has %d linters after rejections, want 1", r.Len())
	}
}

func TestLintersSortedAndLookup(t *testing.T) {
	r := NewRegistry()
	for _, id := range []string{"zz", "aa", "mm"} {
		if err := r.Register(okLinter(id)); err != nil {
			t.Fatal(err)
		}
	}
	ls := r.Linters()
	if ls[0].ID != "aa" || ls[1].ID != "mm" || ls[2].ID != "zz" {
		t.Errorf("Linters() not ID-sorted: %v %v %v", ls[0].ID, ls[1].ID, ls[2].ID)
	}
	infos := r.Infos()
	for i := range ls {
		if infos[i].ID != ls[i].ID {
			t.Errorf("Infos()[%d] = %s, want %s", i, infos[i].ID, ls[i].ID)
		}
	}
	if _, ok := r.Lookup("mm"); !ok {
		t.Error("Lookup missed a registered linter")
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Error("Lookup found an unregistered linter")
	}
}

// TestNumInstancesGate proves the declared-concurrency contract: a linter
// with NumInstances=1 never observes two in-flight Check calls, no matter
// how many workers the corpus run uses.
func TestNumInstancesGate(t *testing.T) {
	var inFlight, maxSeen atomic.Int32
	r := NewRegistry()
	r.MustRegister(Linter{
		ID: "gated", Version: 1, Severity: Info,
		Describe:     "serialised synthetic linter",
		NumInstances: 1,
		Check: func(*x509lite.Certificate, *Context) (string, bool) {
			n := inFlight.Add(1)
			for {
				m := maxSeen.Load()
				if n <= m || maxSeen.CompareAndSwap(m, n) {
					break
				}
			}
			inFlight.Add(-1)
			return "gated", true
		},
	})

	certs := make([]*x509lite.Certificate, 64)
	base := lintCert(t, nil)
	for i := range certs {
		certs[i] = base
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.RunCorpus(certs, nil, Options{Workers: 8})
		}()
	}
	wg.Wait()
	if m := maxSeen.Load(); m > 1 {
		t.Errorf("gated linter saw %d concurrent checks, declared 1", m)
	}
}

func TestProfileParseRoundTrip(t *testing.T) {
	names := []string{
		"leaf", "subordinate", "root", "router", "storage", "vpn",
		"firewall", "camera", "remote-admin", "other-device", "unknown-device",
	}
	for _, n := range names {
		p, ok := ParseProfile(n)
		if !ok || p == ProfileAll {
			t.Errorf("ParseProfile(%q) = %v, %v", n, p, ok)
			continue
		}
		if p.String() != n {
			t.Errorf("Profile %q round-trips as %q", n, p.String())
		}
	}
	if p, ok := ParseProfile("all"); !ok || p != ProfileAll {
		t.Errorf("ParseProfile(all) = %v, %v", p, ok)
	}
	if ProfileAll.String() != "all" {
		t.Errorf("zero mask renders as %q", ProfileAll.String())
	}
	if _, ok := ParseProfile("toaster"); ok {
		t.Error("unknown profile name parsed")
	}
	mask := ProfileLeaf | ProfileVPN
	if got := mask.String(); got != "leaf,vpn" {
		t.Errorf("mask renders as %q, want leaf,vpn", got)
	}
}

func TestProfilesOf(t *testing.T) {
	leaf := lintCert(t, nil)
	if p := ProfilesOf(leaf); p&ProfileLeaf == 0 {
		t.Errorf("plain cert profiles = %s, want leaf", p)
	}
	root := lintCert(t, func(tmpl *x509lite.Template) {
		tmpl.IsCA = true
		tmpl.IncludeBasicConstraints = true
	})
	if p := ProfilesOf(root); p&ProfileRoot == 0 {
		t.Errorf("self-issued CA profiles = %s, want root", p)
	}
	sub := lintCert(t, func(tmpl *x509lite.Template) {
		tmpl.IsCA = true
		tmpl.IncludeBasicConstraints = true
		tmpl.Issuer = x509lite.Name{CommonName: "parent"}
	})
	if p := ProfilesOf(sub); p&ProfileSubordinate == 0 {
		t.Errorf("intermediate CA profiles = %s, want subordinate", p)
	}

	vpn := lintCert(t, func(tmpl *x509lite.Template) {
		tmpl.Subject.CommonName = "SecureGate VPN 1000"
		tmpl.Issuer = tmpl.Subject
	})
	if p := ProfilesOf(vpn); p&ProfileVPN == 0 {
		t.Errorf("VPN cert profiles = %s, want vpn", p)
	}
	router := lintCert(t, func(tmpl *x509lite.Template) {
		tmpl.Subject.CommonName = "203.0.113.7"
		tmpl.Issuer = tmpl.Subject
		tmpl.DNSNames = nil
	})
	if p := ProfilesOf(router); p&ProfileRouter == 0 {
		t.Errorf("bare-IP cert profiles = %s, want router fallback", p)
	}
	unknown := lintCert(t, func(tmpl *x509lite.Template) {
		tmpl.Subject.CommonName = "device.example"
	})
	if p := ProfilesOf(unknown); p&ProfileUnknownDevice == 0 {
		t.Errorf("unmatched cert profiles = %s, want unknown-device", p)
	}
}

func writeConfig(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "certlint.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestConfigDisabled(t *testing.T) {
	cfg, err := LoadConfig(writeConfig(t, `{"lints": {"self_signed": {"disabled": true}}}`))
	if err != nil {
		t.Fatal(err)
	}
	c := lintCert(t, nil)
	for _, f := range Default().RunCert(c, nil, cfg) {
		if f.LintID == "self_signed" {
			t.Error("disabled lint still fired")
		}
	}
}

func TestConfigOnlyRescopesProfiles(t *testing.T) {
	// Restrict san_missing to root CAs; the SAN-less leaf must stop firing.
	cfg, err := LoadConfig(writeConfig(t, `{"lints": {"san_missing": {"only": ["root"]}}}`))
	if err != nil {
		t.Fatal(err)
	}
	leaf := lintCert(t, func(tmpl *x509lite.Template) {
		tmpl.DNSNames = nil
	})
	if hasLint(Default().RunCert(leaf, nil, nil), "san_missing") != true {
		t.Fatal("fixture does not trigger san_missing unconfigured")
	}
	if hasLint(Default().RunCert(leaf, nil, cfg), "san_missing") {
		t.Error("only=[root] still lints a leaf")
	}
}

func TestConfigAllowSuppresses(t *testing.T) {
	cfg, err := LoadConfig(writeConfig(t, `{"lints": {"subject_empty": {"allow": ["O=AVM"]}}}`))
	if err != nil {
		t.Fatal(err)
	}
	// Empty subject, issuer O=AVM: suppressed via the issuer name.
	c := lintCert(t, func(tmpl *x509lite.Template) {
		tmpl.Subject = x509lite.Name{}
		tmpl.Issuer = x509lite.Name{Organization: "AVM"}
	})
	if hasLint(Default().RunCert(c, nil, cfg), "subject_empty") {
		t.Error("allowlisted issuer still reported")
	}
	// A different issuer is still reported.
	other := lintCert(t, func(tmpl *x509lite.Template) {
		tmpl.Subject = x509lite.Name{}
		tmpl.Issuer = x509lite.Name{Organization: "Other"}
	})
	if !hasLint(Default().RunCert(other, nil, cfg), "subject_empty") {
		t.Error("non-allowlisted issuer suppressed")
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := LoadConfig(writeConfig(t, `{"lints": {"x": {"only": ["toaster"]}}}`)); err == nil {
		t.Error("unknown profile name accepted")
	}
	if _, err := LoadConfig(writeConfig(t, `{"lints": {"x": {"unknown_key": 1}}}`)); err == nil {
		t.Error("unknown config key accepted")
	}
	if _, err := LoadConfig(writeConfig(t, `{nope`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := LoadConfig(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	cfg, err := LoadConfig("")
	if err != nil || len(cfg.Lints) != 0 {
		t.Errorf("empty path: cfg=%+v err=%v", cfg, err)
	}
}

func TestFindingsSortedWithinCert(t *testing.T) {
	// A maximally broken cert triggers many linters; findings must come out
	// ordered by (LintID, Severity).
	c := lintCert(t, func(tmpl *x509lite.Template) {
		tmpl.Subject = x509lite.Name{}
		tmpl.Issuer = x509lite.Name{}
		tmpl.DNSNames = nil
		tmpl.OCSPServer = nil
		tmpl.NotAfter = tmpl.NotBefore.AddDate(0, 0, -10)
	})
	fs := RunAll(c, nil)
	if len(fs) < 4 {
		t.Fatalf("broken fixture triggered only %d findings", len(fs))
	}
	for i := 1; i < len(fs); i++ {
		a, b := fs[i-1], fs[i]
		if a.LintID > b.LintID || (a.LintID == b.LintID && a.Severity > b.Severity) {
			t.Errorf("findings out of order: %s before %s", a, b)
		}
	}
	if strings.Compare(fs[0].LintID, fs[len(fs)-1].LintID) > 0 {
		t.Error("first finding sorts after last")
	}
}
