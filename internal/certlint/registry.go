package certlint

import (
	"fmt"
	"sort"
	"sync"

	"securepki/internal/x509lite"
)

// Linter is one registered check: a stable ID, a version bumped whenever the
// check's behaviour changes (so persisted findings can be attributed to the
// exact rule that produced them), a severity, an applicability profile mask,
// and the check itself. The shape follows pkimetal's linter registry —
// named, versioned backends with declared concurrency — collapsed to
// in-process pure functions.
type Linter struct {
	// ID is the stable registry key, unique across the registry and never
	// reused with different semantics. Lowercase snake_case.
	ID string
	// Version starts at 1 and is bumped whenever the check's behaviour
	// changes; the findings column persists it next to every finding.
	Version int
	// Severity grades every finding this linter emits.
	Severity Severity
	// Describe explains what the linter detects (shown by `certinfo -lint`
	// and asserted non-empty by the registry contract test).
	Describe string
	// Profiles restricts the linter to certificates matching the mask;
	// ProfileAll (zero) runs everywhere.
	Profiles Profile
	// NumInstances declares how many concurrent Check invocations the linter
	// tolerates: 0 means unbounded (a pure function), N > 0 means at most N
	// in flight at once — the engine serialises the surplus. Declared, not
	// inferred, exactly like pkimetal's per-linter instance counts.
	NumInstances int
	// Check returns a detail string and whether the lint triggered. It must
	// be deterministic in (certificate, context).
	Check func(c *x509lite.Certificate, ctx *Context) (string, bool)
}

// LinterInfo is the persisted identity of a linter: what the findings column
// stores so findings stay attributable after the registry evolves.
type LinterInfo struct {
	ID       string
	Version  int
	Severity Severity
}

// Finding is one triggered lint.
type Finding struct {
	LintID   string
	Version  int
	Severity Severity
	Detail   string
}

// String renders "SEVERITY lint_id/vN: detail".
func (f Finding) String() string {
	return fmt.Sprintf("%s %s/v%d: %s", f.Severity, f.LintID, f.Version, f.Detail)
}

// Context supplies population-level knowledge to linters that need it (key
// sharing cannot be judged from one certificate alone). It is read-only
// during a run; the engine shares one value across all workers.
type Context struct {
	// KeyCount maps public-key fingerprints to how many distinct
	// certificates carry them; nil disables the shared-key linter.
	KeyCount map[x509lite.Fingerprint]int
}

// Registry holds named linters. The zero value is unusable; construct with
// NewRegistry (empty) or Default (the full built-in battery). Registration
// is not goroutine-safe — register everything before running.
type Registry struct {
	linters []Linter
	byID    map[string]int
	// gates serialise linters with declared NumInstances > 0; built lazily
	// at first run and keyed by linter index.
	gatesOnce sync.Once
	gates     map[int]chan struct{}

	// sortIdx caches linter indexes in ID order — the engine walks it per
	// certificate, so it must not be re-sorted in the hot loop.
	sortOnce sync.Once
	sortIdx  []int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]int)}
}

// Register adds a linter, enforcing the registry contract: non-empty unique
// ID, version ≥ 1, a description and a check function.
func (r *Registry) Register(l Linter) error {
	if l.ID == "" {
		return fmt.Errorf("certlint: linter with empty ID")
	}
	if l.Version < 1 {
		return fmt.Errorf("certlint: linter %s has version %d, want >= 1", l.ID, l.Version)
	}
	if l.Severity < Info || l.Severity > Fatal {
		return fmt.Errorf("certlint: linter %s has severity %d outside the taxonomy", l.ID, l.Severity)
	}
	if l.Describe == "" {
		return fmt.Errorf("certlint: linter %s has no description", l.ID)
	}
	if l.Check == nil {
		return fmt.Errorf("certlint: linter %s has no check", l.ID)
	}
	if l.NumInstances < 0 {
		return fmt.Errorf("certlint: linter %s declares %d instances", l.ID, l.NumInstances)
	}
	if _, dup := r.byID[l.ID]; dup {
		return fmt.Errorf("certlint: duplicate linter ID %s", l.ID)
	}
	r.byID[l.ID] = len(r.linters)
	r.linters = append(r.linters, l)
	return nil
}

// MustRegister is Register that panics — for the built-in battery, where a
// registration error is a programming bug.
func (r *Registry) MustRegister(l Linter) {
	if err := r.Register(l); err != nil {
		panic(err)
	}
}

// Len returns the number of registered linters.
func (r *Registry) Len() int { return len(r.linters) }

// Linters returns the battery sorted by ID — the registry's canonical order,
// which the engine, the survey and the findings column all share.
func (r *Registry) Linters() []Linter {
	out := append([]Linter(nil), r.linters...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Infos returns the persisted identities, sorted by ID.
func (r *Registry) Infos() []LinterInfo {
	ls := r.Linters()
	out := make([]LinterInfo, len(ls))
	for i, l := range ls {
		out[i] = LinterInfo{ID: l.ID, Version: l.Version, Severity: l.Severity}
	}
	return out
}

// Lookup finds a linter by ID.
func (r *Registry) Lookup(id string) (Linter, bool) {
	i, ok := r.byID[id]
	if !ok {
		return Linter{}, false
	}
	return r.linters[i], true
}

// sortedIndexes returns linter indexes in ID order, computed once.
func (r *Registry) sortedIndexes() []int {
	r.sortOnce.Do(func() {
		r.sortIdx = make([]int, len(r.linters))
		for i := range r.sortIdx {
			r.sortIdx[i] = i
		}
		sort.Slice(r.sortIdx, func(a, b int) bool {
			return r.linters[r.sortIdx[a]].ID < r.linters[r.sortIdx[b]].ID
		})
	})
	return r.sortIdx
}

// gate returns the concurrency gate for linter index i, or nil when the
// linter runs unbounded.
func (r *Registry) gate(i int) chan struct{} {
	r.gatesOnce.Do(func() {
		r.gates = make(map[int]chan struct{})
		for j, l := range r.linters {
			if l.NumInstances > 0 {
				r.gates[j] = make(chan struct{}, l.NumInstances)
			}
		}
	})
	return r.gates[i]
}

// defaultOnce builds the process-wide default registry a single time; the
// battery is immutable after construction, so sharing it is safe.
var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the built-in battery: the paper's §4/§5 invalid-certificate
// taxonomy ported as the first registered profile, plus the extended RFC
// 5280 checks. The result is shared; do not register into it.
func Default() *Registry {
	defaultOnce.Do(func() {
		defaultReg = NewRegistry()
		registerPaperLints(defaultReg)
		registerExtendedLints(defaultReg)
	})
	return defaultReg
}
