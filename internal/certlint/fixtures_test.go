package certlint

import (
	"flag"
	"math/big"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"securepki/internal/x509lite"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/findings.golden")

// lintFixture is the bidirectional contract every registered linter must
// ship: a template mutation that triggers it and one that does not, so both
// directions of the check are pinned.
type lintFixture struct {
	trigger func(*x509lite.Template)
	clean   func(*x509lite.Template)
	// keyCount builds the population context (key_shared needs one); 0
	// means lint without context.
	triggerKeyCount int
	cleanKeyCount   int
}

// fixtures maps every default-registry linter ID to its bidirectional
// fixture, in the order the golden file renders them.
func fixtures() map[string]lintFixture {
	return map[string]lintFixture{
		"validity_negative": {
			trigger: func(t *x509lite.Template) { t.NotAfter = t.NotBefore.AddDate(0, 0, -100) },
		},
		"validity_excessive": {
			trigger: func(t *x509lite.Template) { t.NotAfter = t.NotBefore.AddDate(20, 0, 0) },
		},
		"validity_beyond_y3000": {
			trigger: func(t *x509lite.Template) { t.NotAfter = time.Date(3010, 1, 1, 0, 0, 0, 0, time.UTC) },
		},
		"subject_empty": {
			trigger: func(t *x509lite.Template) { t.Subject = x509lite.Name{} },
		},
		"subject_private_ip": {
			trigger: func(t *x509lite.Template) { t.Subject.CommonName = "192.168.1.1" },
			clean:   func(t *x509lite.Template) { t.Subject.CommonName = "8.8.8.8" },
		},
		"subject_ip": {
			trigger: func(t *x509lite.Template) { t.Subject.CommonName = "8.8.8.8" },
			clean:   func(t *x509lite.Template) { t.Subject.CommonName = "192.168.1.1" },
		},
		"san_missing": {
			trigger: func(t *x509lite.Template) { t.DNSNames = nil },
		},
		"revocation_missing": {
			trigger: func(t *x509lite.Template) { t.OCSPServer = nil },
		},
		"version_bogus": {
			trigger: func(t *x509lite.Template) { t.Version = 13 },
		},
		"version_v1_leaf": {
			trigger: func(t *x509lite.Template) { t.Version = 1 },
		},
		"notbefore_ancient": {
			trigger: func(t *x509lite.Template) {
				t.NotBefore = time.Date(2000, 5, 1, 0, 0, 0, 0, time.UTC)
				t.NotAfter = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
			},
		},
		"self_signed": {
			trigger: nil, // the default fixture is self-signed
			clean:   func(t *x509lite.Template) { t.CorruptSignature = true },
		},
		"key_shared": {
			triggerKeyCount: 3,
			cleanKeyCount:   1,
		},
		"serial_nonpositive": {
			trigger: func(t *x509lite.Template) { t.SerialNumber = big.NewInt(-5) },
		},
		"serial_absurd_length": {
			trigger: func(t *x509lite.Template) {
				raw := make([]byte, 21)
				raw[0] = 1
				t.SerialNumber = new(big.Int).SetBytes(raw)
			},
		},
		"san_duplicate": {
			trigger: func(t *x509lite.Template) { t.DNSNames = []string{"device.example", "device.example"} },
		},
		"time_encoding_mismatch": {
			trigger: func(t *x509lite.Template) { t.ForceGeneralizedTime = true },
			clean: func(t *x509lite.Template) {
				// GeneralizedTime is the mandated encoding from 2050 on.
				t.ForceGeneralizedTime = true
				t.NotBefore = time.Date(2051, 1, 1, 0, 0, 0, 0, time.UTC)
				t.NotAfter = time.Date(2052, 1, 1, 0, 0, 0, 0, time.UTC)
			},
		},
		"basicconstraints_missing_ca": {
			trigger: func(t *x509lite.Template) { t.KeyUsage = 0x04 }, // keyCertSign, no basicConstraints
			clean: func(t *x509lite.Template) {
				t.KeyUsage = 0x04
				t.IsCA = true
				t.IncludeBasicConstraints = true
			},
		},
		"key_usage_missing": {
			trigger: nil, // the default fixture carries no KeyUsage
			clean:   func(t *x509lite.Template) { t.KeyUsage = 0x80 },
		},
		"dns_name_malformed": {
			trigger: func(t *x509lite.Template) { t.DNSNames = []string{"bad name!.example"} },
		},
		"revocation_expected_enterprise": {
			trigger: func(t *x509lite.Template) {
				t.Subject.CommonName = "SecureGate VPN 1000"
				t.Issuer = t.Subject
				t.OCSPServer = nil
			},
			clean: func(t *x509lite.Template) {
				t.Subject.CommonName = "SecureGate VPN 1000"
				t.Issuer = t.Subject
			},
		},
	}
}

func contextWithCount(c *x509lite.Certificate, n int) *Context {
	if n == 0 {
		return nil
	}
	return &Context{KeyCount: map[x509lite.Fingerprint]int{c.PublicKeyFingerprint(): n}}
}

// TestEveryLinterHasBidirectionalFixture is the registry's coverage gate:
// each registered linter must come with a fixture that triggers it and a
// fixture that does not, and both must behave.
func TestEveryLinterHasBidirectionalFixture(t *testing.T) {
	fx := fixtures()
	for _, l := range Default().Linters() {
		f, ok := fx[l.ID]
		if !ok {
			t.Errorf("linter %s has no fixture", l.ID)
			continue
		}
		trigger := lintCert(t, f.trigger)
		if !hasLint(Default().RunCert(trigger, contextWithCount(trigger, f.triggerKeyCount), nil), l.ID) {
			t.Errorf("linter %s: trigger fixture does not trigger", l.ID)
		}
		clean := lintCert(t, f.clean)
		if hasLint(Default().RunCert(clean, contextWithCount(clean, f.cleanKeyCount), nil), l.ID) {
			t.Errorf("linter %s: clean fixture triggers", l.ID)
		}
	}
	for id := range fx {
		if _, ok := Default().Lookup(id); !ok {
			t.Errorf("fixture %s has no registered linter", id)
		}
	}
}

// TestFindingsGolden pins the rendered findings of every trigger fixture —
// IDs, versions, severities, details and sort order all at once. Regenerate
// with `go test ./internal/certlint -run TestFindingsGolden -update` after
// an intentional change.
func TestFindingsGolden(t *testing.T) {
	fx := fixtures()
	var b strings.Builder
	for _, l := range Default().Linters() {
		f, ok := fx[l.ID]
		if !ok {
			t.Fatalf("linter %s has no fixture", l.ID)
		}
		c := lintCert(t, f.trigger)
		b.WriteString("== " + l.ID + "\n")
		for _, finding := range Default().RunCert(c, contextWithCount(c, f.triggerKeyCount), nil) {
			b.WriteString(finding.String() + "\n")
		}
	}
	got := b.String()

	path := filepath.Join("testdata", "findings.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("findings drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
