// Package certlint is a pluggable, pkimetal-style certificate lint registry
// specialised for the pathologies the paper catalogues in end-user-device
// certificates: negative and absurd validity periods, IP-address and empty
// subjects, missing revocation plumbing, bogus versions, firmware-epoch
// timestamps, and keys shared across unrelated certificates.
//
// Each check is a Linter with a stable ID, a version, a four-level severity
// and an applicability profile (leaf/subordinate/root plus the device classes
// of the simulated population). Default() returns the built-in battery;
// Registry.RunCert lints one certificate and Registry.RunCorpus a whole
// population through the deterministic worker pool, byte-identical at any
// worker count. certlint.json (LoadConfig) disables, rescopes or suppresses
// individual linters with the same per-rule replace semantics as
// repolint.json. Survey aggregates prevalence over a population — the §5
// "why is so much of the PKI invalid" analysis in executable form.
package certlint

import (
	"fmt"
	"sort"
	"strings"

	"securepki/internal/x509lite"
)

// RunAll lints one certificate against the default registry with optional
// population context — the pre-registry entry point, kept for callers that
// need neither config nor corpus batching.
func RunAll(c *x509lite.Certificate, ctx *Context) []Finding {
	return Default().RunCert(c, ctx, nil)
}

// SurveyRow is one lint's prevalence in a population split.
type SurveyRow struct {
	LintID       string
	Severity     Severity
	ValidFrac    float64
	InvalidFrac  float64
	ValidCount   int
	InvalidCount int
}

// Survey lints a whole population and reports per-lint prevalence among
// valid and invalid certificates — the executable version of §5's "invalid
// certificates are a fundamentally different population".
func Survey(certs []*x509lite.Certificate, invalid func(*x509lite.Certificate) bool) []SurveyRow {
	// Build the key-sharing context first.
	ctx := &Context{KeyCount: make(map[x509lite.Fingerprint]int)}
	for _, c := range certs {
		ctx.KeyCount[c.PublicKeyFingerprint()]++
	}

	type agg struct {
		sev            Severity
		valid, invalid int
	}
	rows := make(map[string]*agg)
	var nValid, nInvalid int
	for _, c := range certs {
		isInvalid := invalid(c)
		if isInvalid {
			nInvalid++
		} else {
			nValid++
		}
		for _, f := range RunAll(c, ctx) {
			a, ok := rows[f.LintID]
			if !ok {
				a = &agg{sev: f.Severity}
				rows[f.LintID] = a
			}
			if isInvalid {
				a.invalid++
			} else {
				a.valid++
			}
		}
	}

	out := make([]SurveyRow, 0, len(rows))
	for id, a := range rows {
		row := SurveyRow{LintID: id, Severity: a.sev, ValidCount: a.valid, InvalidCount: a.invalid}
		if nValid > 0 {
			row.ValidFrac = float64(a.valid) / float64(nValid)
		}
		if nInvalid > 0 {
			row.InvalidFrac = float64(a.invalid) / float64(nInvalid)
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].InvalidFrac != out[j].InvalidFrac {
			return out[i].InvalidFrac > out[j].InvalidFrac
		}
		return out[i].LintID < out[j].LintID
	})
	return out
}

// FormatSurvey renders survey rows as a table.
func FormatSurvey(rows []SurveyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-8s %10s %10s\n", "lint", "severity", "valid", "invalid")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %-8s %9.1f%% %9.1f%%\n", r.LintID, r.Severity, 100*r.ValidFrac, 100*r.InvalidFrac)
	}
	return b.String()
}

func looksLikeIPv4(s string) bool {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return false
	}
	for _, p := range parts {
		if len(p) == 0 || len(p) > 3 {
			return false
		}
		for _, c := range p {
			if c < '0' || c > '9' {
				return false
			}
		}
	}
	return true
}

func isPrivateIPString(s string) bool {
	if !looksLikeIPv4(s) {
		return false
	}
	return strings.HasPrefix(s, "10.") ||
		strings.HasPrefix(s, "192.168.") ||
		isRFC1918SecondOctet(s)
}

func isRFC1918SecondOctet(s string) bool {
	if !strings.HasPrefix(s, "172.") {
		return false
	}
	rest := strings.TrimPrefix(s, "172.")
	dot := strings.IndexByte(rest, '.')
	if dot <= 0 {
		return false
	}
	second := 0
	for _, c := range rest[:dot] {
		second = second*10 + int(c-'0')
	}
	return second >= 16 && second <= 31
}
