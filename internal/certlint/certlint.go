// Package certlint is a zlint-style certificate linter specialised for the
// pathologies the paper catalogues in end-user-device certificates: negative
// and absurd validity periods, IP-address and empty subjects, missing
// revocation plumbing, bogus versions, firmware-epoch timestamps, and keys
// shared across unrelated certificates.
//
// Each check is a Lint with a stable ID; RunAll returns the findings for one
// certificate, and Survey aggregates prevalence over a population — the §5
// "why is so much of the PKI invalid" analysis in executable form.
package certlint

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"securepki/internal/x509lite"
)

// Severity grades a finding.
type Severity int

// Severities, mildest first.
const (
	// Notice: unusual but harmless (e.g. very long validity).
	Notice Severity = iota
	// Warning: weakens the certificate's usefulness (no SAN, IP subject).
	Warning
	// Error: the certificate is broken or dangerous (negative validity,
	// bogus version, shared key).
	Error
)

// String returns the label used in reports.
func (s Severity) String() string {
	switch s {
	case Notice:
		return "NOTICE"
	case Warning:
		return "WARNING"
	case Error:
		return "ERROR"
	default:
		return "UNKNOWN"
	}
}

// Finding is one triggered lint.
type Finding struct {
	LintID   string
	Severity Severity
	Detail   string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s %s: %s", f.Severity, f.LintID, f.Detail)
}

// Lint is one check over a certificate. Check returns a detail string and
// whether the lint triggered.
type Lint struct {
	ID       string
	Severity Severity
	// Describe explains what the lint detects.
	Describe string
	Check    func(c *x509lite.Certificate) (string, bool)
}

// Context supplies population-level knowledge to lints that need it (key
// sharing cannot be judged from one certificate alone).
type Context struct {
	// KeyCount maps public-key fingerprints to how many distinct
	// certificates carry them; nil disables the shared-key lint.
	KeyCount map[x509lite.Fingerprint]int
}

// Lints returns the full lint battery in stable order.
func Lints() []Lint {
	return []Lint{
		{
			ID: "validity_negative", Severity: Error,
			Describe: "NotAfter precedes NotBefore (5.38% of the paper's invalid certs)",
			Check: func(c *x509lite.Certificate) (string, bool) {
				if d := c.ValidityDays(); d < 0 {
					return fmt.Sprintf("validity is %.0f days", d), true
				}
				return "", false
			},
		},
		{
			ID: "validity_excessive", Severity: Notice,
			Describe: "validity period over 10 years (invalid median was 20y)",
			Check: func(c *x509lite.Certificate) (string, bool) {
				if d := c.ValidityDays(); d > 3653 {
					return fmt.Sprintf("validity is %.1f years", d/365.25), true
				}
				return "", false
			},
		},
		{
			ID: "validity_beyond_y3000", Severity: Warning,
			Describe: "NotAfter in the year 3000 or later",
			Check: func(c *x509lite.Certificate) (string, bool) {
				if c.NotAfter.Year() >= 3000 {
					return fmt.Sprintf("NotAfter is %d", c.NotAfter.Year()), true
				}
				return "", false
			},
		},
		{
			ID: "subject_empty", Severity: Warning,
			Describe: "entirely empty subject (925k certs in the paper)",
			Check: func(c *x509lite.Certificate) (string, bool) {
				if c.Subject.Empty() {
					return "subject has no attributes", true
				}
				return "", false
			},
		},
		{
			ID: "subject_private_ip", Severity: Warning,
			Describe: "Common Name is a private (RFC 1918) address",
			Check: func(c *x509lite.Certificate) (string, bool) {
				if isPrivateIPString(c.Subject.CommonName) {
					return "CN " + c.Subject.CommonName, true
				}
				return "", false
			},
		},
		{
			ID: "subject_ip", Severity: Notice,
			Describe: "Common Name is a literal IP address (46.9% of the paper's CNs)",
			Check: func(c *x509lite.Certificate) (string, bool) {
				cn := c.Subject.CommonName
				if looksLikeIPv4(cn) && !isPrivateIPString(cn) {
					return "CN " + cn, true
				}
				return "", false
			},
		},
		{
			ID: "san_missing", Severity: Warning,
			Describe: "leaf certificate without a Subject Alternative Name",
			Check: func(c *x509lite.Certificate) (string, bool) {
				if c.IsCA {
					return "", false
				}
				if len(c.DNSNames) == 0 && len(c.IPAddresses) == 0 {
					return "no SAN extension", true
				}
				return "", false
			},
		},
		{
			ID: "revocation_missing", Severity: Notice,
			Describe: "no CRL, OCSP or AIA endpoint (99%+ of invalid certs)",
			Check: func(c *x509lite.Certificate) (string, bool) {
				if len(c.CRLDistributionPoints) == 0 && len(c.OCSPServer) == 0 && len(c.IssuingCertificateURL) == 0 {
					return "no revocation endpoints", true
				}
				return "", false
			},
		},
		{
			ID: "version_bogus", Severity: Error,
			Describe: "X.509 version other than 1 or 3 (the paper saw 2, 4, 13)",
			Check: func(c *x509lite.Certificate) (string, bool) {
				if c.Version != 1 && c.Version != 3 {
					return fmt.Sprintf("version %d", c.Version), true
				}
				return "", false
			},
		},
		{
			ID: "version_v1_leaf", Severity: Warning,
			Describe: "version 1 certificate (cannot distinguish CA from leaf)",
			Check: func(c *x509lite.Certificate) (string, bool) {
				if c.Version == 1 {
					return "v1 certificate", true
				}
				return "", false
			},
		},
		{
			ID: "notbefore_ancient", Severity: Warning,
			Describe: "NotBefore more than ~3 years before NotAfter-derived issuance era (firmware epoch clocks)",
			Check: func(c *x509lite.Certificate) (string, bool) {
				if c.NotBefore.Year() > 1 && c.NotBefore.Before(time.Date(2008, 1, 1, 0, 0, 0, 0, time.UTC)) {
					return "NotBefore " + c.NotBefore.Format("2006-01-02"), true
				}
				return "", false
			},
		},
		{
			ID: "self_signed", Severity: Notice,
			Describe: "certificate verifies under its own key",
			Check: func(c *x509lite.Certificate) (string, bool) {
				if c.SelfSigned() {
					return "self-signed", true
				}
				return "", false
			},
		},
	}
}

// contextLints returns the lints that need population context.
func contextLints(ctx *Context) []Lint {
	if ctx == nil || ctx.KeyCount == nil {
		return nil
	}
	return []Lint{{
		ID: "key_shared", Severity: Error,
		Describe: "public key appears in other certificates (47% of the paper's invalid certs)",
		Check: func(c *x509lite.Certificate) (string, bool) {
			if n := ctx.KeyCount[c.PublicKeyFingerprint()]; n > 1 {
				return fmt.Sprintf("key shared by %d certificates", n), true
			}
			return "", false
		},
	}}
}

// RunAll lints one certificate, with optional population context.
func RunAll(c *x509lite.Certificate, ctx *Context) []Finding {
	var out []Finding
	for _, l := range append(Lints(), contextLints(ctx)...) {
		if detail, hit := l.Check(c); hit {
			out = append(out, Finding{LintID: l.ID, Severity: l.Severity, Detail: detail})
		}
	}
	return out
}

// SurveyRow is one lint's prevalence in a population split.
type SurveyRow struct {
	LintID       string
	Severity     Severity
	ValidFrac    float64
	InvalidFrac  float64
	ValidCount   int
	InvalidCount int
}

// Survey lints a whole population and reports per-lint prevalence among
// valid and invalid certificates — the executable version of §5's "invalid
// certificates are a fundamentally different population".
func Survey(certs []*x509lite.Certificate, invalid func(*x509lite.Certificate) bool) []SurveyRow {
	// Build the key-sharing context first.
	ctx := &Context{KeyCount: make(map[x509lite.Fingerprint]int)}
	for _, c := range certs {
		ctx.KeyCount[c.PublicKeyFingerprint()]++
	}

	type agg struct {
		sev            Severity
		valid, invalid int
	}
	rows := make(map[string]*agg)
	var nValid, nInvalid int
	for _, c := range certs {
		isInvalid := invalid(c)
		if isInvalid {
			nInvalid++
		} else {
			nValid++
		}
		for _, f := range RunAll(c, ctx) {
			a, ok := rows[f.LintID]
			if !ok {
				a = &agg{sev: f.Severity}
				rows[f.LintID] = a
			}
			if isInvalid {
				a.invalid++
			} else {
				a.valid++
			}
		}
	}

	out := make([]SurveyRow, 0, len(rows))
	for id, a := range rows {
		row := SurveyRow{LintID: id, Severity: a.sev, ValidCount: a.valid, InvalidCount: a.invalid}
		if nValid > 0 {
			row.ValidFrac = float64(a.valid) / float64(nValid)
		}
		if nInvalid > 0 {
			row.InvalidFrac = float64(a.invalid) / float64(nInvalid)
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].InvalidFrac != out[j].InvalidFrac {
			return out[i].InvalidFrac > out[j].InvalidFrac
		}
		return out[i].LintID < out[j].LintID
	})
	return out
}

// FormatSurvey renders survey rows as a table.
func FormatSurvey(rows []SurveyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-8s %10s %10s\n", "lint", "severity", "valid", "invalid")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %-8s %9.1f%% %9.1f%%\n", r.LintID, r.Severity, 100*r.ValidFrac, 100*r.InvalidFrac)
	}
	return b.String()
}

func looksLikeIPv4(s string) bool {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return false
	}
	for _, p := range parts {
		if len(p) == 0 || len(p) > 3 {
			return false
		}
		for _, c := range p {
			if c < '0' || c > '9' {
				return false
			}
		}
	}
	return true
}

func isPrivateIPString(s string) bool {
	if !looksLikeIPv4(s) {
		return false
	}
	return strings.HasPrefix(s, "10.") ||
		strings.HasPrefix(s, "192.168.") ||
		isRFC1918SecondOctet(s)
}

func isRFC1918SecondOctet(s string) bool {
	if !strings.HasPrefix(s, "172.") {
		return false
	}
	rest := strings.TrimPrefix(s, "172.")
	dot := strings.IndexByte(rest, '.')
	if dot <= 0 {
		return false
	}
	second := 0
	for _, c := range rest[:dot] {
		second = second*10 + int(c-'0')
	}
	return second >= 16 && second <= 31
}
