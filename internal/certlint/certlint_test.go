package certlint

import (
	"crypto/ed25519"
	"math/big"
	"testing"
	"time"

	"securepki/internal/x509lite"
)

var serial int64 = 500

func lintCert(t *testing.T, mutate func(*x509lite.Template)) *x509lite.Certificate {
	t.Helper()
	serial++
	seed := make([]byte, ed25519.SeedSize)
	seed[0], seed[1] = byte(serial), byte(serial>>8)
	priv := ed25519.NewKeyFromSeed(seed)
	pub := priv.Public().(ed25519.PublicKey)
	tmpl := &x509lite.Template{
		Version:      3,
		SerialNumber: big.NewInt(serial),
		Subject:      x509lite.Name{CommonName: "device.example"},
		Issuer:       x509lite.Name{CommonName: "device.example"},
		NotBefore:    time.Date(2013, 3, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:     time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC),
		DNSNames:     []string{"device.example"},
		OCSPServer:   []string{"http://ocsp.example"},
	}
	if mutate != nil {
		mutate(tmpl)
	}
	der, err := x509lite.CreateCertificate(tmpl, pub, priv)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := x509lite.Parse(der)
	if err != nil {
		t.Fatal(err)
	}
	return cert
}

func hasLint(findings []Finding, id string) bool {
	for _, f := range findings {
		if f.LintID == id {
			return true
		}
	}
	return false
}

func TestCleanCertTriggersOnlyBenignInfo(t *testing.T) {
	c := lintCert(t, nil)
	findings := RunAll(c, nil)
	// The fixture is self-signed and (like the devicesim population) carries
	// no KeyUsage extension; both are INFO-grade observations. Anything else
	// on a clean certificate is a linter bug.
	benign := map[string]bool{"self_signed": true, "key_usage_missing": true}
	for _, f := range findings {
		if !benign[f.LintID] {
			t.Errorf("clean cert triggered %s", f)
		}
		if f.Severity != Info {
			t.Errorf("benign finding %s has severity %s, want INFO", f.LintID, f.Severity)
		}
	}
}

func TestNegativeValidity(t *testing.T) {
	c := lintCert(t, func(tmpl *x509lite.Template) {
		tmpl.NotAfter = tmpl.NotBefore.AddDate(0, 0, -100)
	})
	if !hasLint(RunAll(c, nil), "validity_negative") {
		t.Error("negative validity not flagged")
	}
}

func TestExcessiveValidityAndY3000(t *testing.T) {
	c := lintCert(t, func(tmpl *x509lite.Template) {
		tmpl.NotAfter = time.Date(3010, 1, 1, 0, 0, 0, 0, time.UTC)
	})
	fs := RunAll(c, nil)
	if !hasLint(fs, "validity_excessive") || !hasLint(fs, "validity_beyond_y3000") {
		t.Errorf("far-future validity not flagged: %v", fs)
	}
}

func TestEmptySubject(t *testing.T) {
	c := lintCert(t, func(tmpl *x509lite.Template) {
		tmpl.Subject = x509lite.Name{}
	})
	if !hasLint(RunAll(c, nil), "subject_empty") {
		t.Error("empty subject not flagged")
	}
}

func TestPrivateAndPublicIPSubjects(t *testing.T) {
	cases := []struct {
		cn   string
		lint string
	}{
		{"192.168.1.1", "subject_private_ip"},
		{"10.0.0.1", "subject_private_ip"},
		{"172.16.0.1", "subject_private_ip"},
		{"172.31.255.1", "subject_private_ip"},
		{"8.8.8.8", "subject_ip"},
		{"172.32.0.1", "subject_ip"}, // just outside RFC 1918
	}
	for _, tc := range cases {
		c := lintCert(t, func(tmpl *x509lite.Template) {
			tmpl.Subject.CommonName = tc.cn
		})
		fs := RunAll(c, nil)
		if !hasLint(fs, tc.lint) {
			t.Errorf("CN %s: %s not flagged (%v)", tc.cn, tc.lint, fs)
		}
	}
	// Non-IP CN must trigger neither.
	c := lintCert(t, func(tmpl *x509lite.Template) { tmpl.Subject.CommonName = "fritz.box" })
	fs := RunAll(c, nil)
	if hasLint(fs, "subject_ip") || hasLint(fs, "subject_private_ip") {
		t.Error("hostname CN flagged as IP")
	}
}

func TestMissingSANAndRevocation(t *testing.T) {
	c := lintCert(t, func(tmpl *x509lite.Template) {
		tmpl.DNSNames = nil
		tmpl.OCSPServer = nil
	})
	fs := RunAll(c, nil)
	if !hasLint(fs, "san_missing") {
		t.Error("missing SAN not flagged")
	}
	if !hasLint(fs, "revocation_missing") {
		t.Error("missing revocation info not flagged")
	}
	// A CA without SAN is fine.
	ca := lintCert(t, func(tmpl *x509lite.Template) {
		tmpl.DNSNames = nil
		tmpl.IsCA = true
		tmpl.IncludeBasicConstraints = true
	})
	if hasLint(RunAll(ca, nil), "san_missing") {
		t.Error("CA flagged for missing SAN")
	}
}

func TestVersionLints(t *testing.T) {
	bogus := lintCert(t, func(tmpl *x509lite.Template) { tmpl.Version = 13 })
	if !hasLint(RunAll(bogus, nil), "version_bogus") {
		t.Error("version 13 not flagged")
	}
	v1 := lintCert(t, func(tmpl *x509lite.Template) { tmpl.Version = 1 })
	fs := RunAll(v1, nil)
	if !hasLint(fs, "version_v1_leaf") {
		t.Error("v1 not flagged")
	}
	if hasLint(fs, "version_bogus") {
		t.Error("v1 flagged as bogus")
	}
}

func TestAncientNotBefore(t *testing.T) {
	c := lintCert(t, func(tmpl *x509lite.Template) {
		tmpl.NotBefore = time.Date(2000, 5, 1, 0, 0, 0, 0, time.UTC)
		tmpl.NotAfter = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	})
	if !hasLint(RunAll(c, nil), "notbefore_ancient") {
		t.Error("firmware-epoch NotBefore not flagged")
	}
}

func TestSharedKeyNeedsContext(t *testing.T) {
	c := lintCert(t, nil)
	if hasLint(RunAll(c, nil), "key_shared") {
		t.Error("key_shared fired without context")
	}
	ctx := &Context{KeyCount: map[x509lite.Fingerprint]int{c.PublicKeyFingerprint(): 3}}
	if !hasLint(RunAll(c, ctx), "key_shared") {
		t.Error("key_shared not fired with sharing context")
	}
	ctx = &Context{KeyCount: map[x509lite.Fingerprint]int{c.PublicKeyFingerprint(): 1}}
	if hasLint(RunAll(c, ctx), "key_shared") {
		t.Error("key_shared fired for unique key")
	}
}

func TestSurvey(t *testing.T) {
	var certs []*x509lite.Certificate
	// Three "invalid" device certs with pathologies, two clean "valid" ones.
	bad1 := lintCert(t, func(tmpl *x509lite.Template) { tmpl.Subject = x509lite.Name{} })
	bad2 := lintCert(t, func(tmpl *x509lite.Template) { tmpl.NotAfter = tmpl.NotBefore.AddDate(0, 0, -1) })
	bad3 := lintCert(t, func(tmpl *x509lite.Template) { tmpl.Subject.CommonName = "192.168.0.1" })
	good1 := lintCert(t, nil)
	good2 := lintCert(t, nil)
	certs = append(certs, bad1, bad2, bad3, good1, good2)
	invalidSet := map[*x509lite.Certificate]bool{bad1: true, bad2: true, bad3: true}

	rows := Survey(certs, func(c *x509lite.Certificate) bool { return invalidSet[c] })
	if len(rows) == 0 {
		t.Fatal("empty survey")
	}
	byID := map[string]SurveyRow{}
	for _, r := range rows {
		byID[r.LintID] = r
	}
	if r := byID["subject_empty"]; r.InvalidCount != 1 || r.ValidCount != 0 {
		t.Errorf("subject_empty = %+v", r)
	}
	if r := byID["validity_negative"]; r.InvalidFrac <= 0 {
		t.Errorf("validity_negative = %+v", r)
	}
	// All five are self-signed.
	if r := byID["self_signed"]; r.ValidCount != 2 || r.InvalidCount != 3 {
		t.Errorf("self_signed = %+v", r)
	}
	if out := FormatSurvey(rows); len(out) == 0 {
		t.Error("empty formatted survey")
	}
}

func TestLintIDsUniqueAndDescribed(t *testing.T) {
	seen := map[string]bool{}
	for _, l := range Default().Linters() {
		if l.ID == "" || l.Describe == "" || l.Check == nil || l.Version < 1 {
			t.Fatalf("incomplete lint %+v", l.ID)
		}
		if seen[l.ID] {
			t.Fatalf("duplicate lint ID %s", l.ID)
		}
		seen[l.ID] = true
	}
	if n := len(seen); n < 15 {
		t.Fatalf("default battery has %d linters, want >= 15", n)
	}
}

func TestSeverityStrings(t *testing.T) {
	if Info.String() != "INFO" || Warn.String() != "WARN" || Error.String() != "ERROR" || Fatal.String() != "FATAL" || Severity(9).String() != "UNKNOWN" {
		t.Error("severity labels wrong")
	}
	for _, s := range []Severity{Info, Warn, Error, Fatal} {
		got, ok := ParseSeverity(s.String())
		if !ok || got != s {
			t.Errorf("ParseSeverity(%q) = %v, %v", s.String(), got, ok)
		}
	}
	if _, ok := ParseSeverity("NOTICE"); ok {
		t.Error("pre-migration label NOTICE must not parse")
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{LintID: "x", Version: 2, Severity: Error, Detail: "boom"}
	if f.String() != "ERROR x/v2: boom" {
		t.Errorf("Finding.String() = %q", f.String())
	}
}
