package certlint

// Severity grades a finding on the pkimetal-style four-level taxonomy.
//
// Migration note (PR 7): the original three-level scale mapped onto this one
// as Notice→INFO, Warning→WARN, Error→ERROR. FATAL is new and reserved for
// certificates that independent parsers are entitled to reject outright
// (bogus X.509 versions, serials past the RFC 5280 20-octet cap) — the
// differential-harness evidence is that crypto/x509 refuses them, so any
// downstream consumer may never even see the certificate. The integer order
// INFO < WARN < ERROR < FATAL is part of the findings sort contract and of
// the persisted column format; never reorder.
type Severity int

// Severities, mildest first.
const (
	// Info: unusual but harmless (e.g. very long validity).
	Info Severity = iota
	// Warn: weakens the certificate's usefulness (no SAN, IP subject).
	Warn
	// Error: the certificate is broken or dangerous (negative validity,
	// shared key, wrong time encoding).
	Error
	// Fatal: strict parsers reject the certificate outright (bogus version,
	// absurd serial).
	Fatal
)

// NumSeverities is the size of per-severity accumulator arrays.
const NumSeverities = 4

// String returns the label used in reports and in the findings column.
func (s Severity) String() string {
	switch s {
	case Info:
		return "INFO"
	case Warn:
		return "WARN"
	case Error:
		return "ERROR"
	case Fatal:
		return "FATAL"
	default:
		return "UNKNOWN"
	}
}

// ParseSeverity maps a label back to its Severity.
func ParseSeverity(label string) (Severity, bool) {
	switch label {
	case "INFO":
		return Info, true
	case "WARN":
		return Warn, true
	case "ERROR":
		return Error, true
	case "FATAL":
		return Fatal, true
	}
	return 0, false
}
