package certlint

import (
	"net"
	"testing"
	"time"

	"securepki/internal/x509lite"
)

// TestEmptyCommonName covers the empty-CN corner: an empty CN inside an
// otherwise-populated subject is not an empty subject, and the IP lints must
// not misparse "" as an address.
func TestEmptyCommonName(t *testing.T) {
	c := lintCert(t, func(tmpl *x509lite.Template) {
		tmpl.Subject = x509lite.Name{Organization: "AVM", CommonName: ""}
	})
	fs := RunAll(c, nil)
	if hasLint(fs, "subject_empty") {
		t.Error("subject with an Organization but empty CN flagged as empty subject")
	}
	if hasLint(fs, "subject_ip") || hasLint(fs, "subject_private_ip") {
		t.Error("empty CN misparsed as an IP address")
	}

	// A fully empty subject still triggers subject_empty and nothing IP-ish.
	empty := lintCert(t, func(tmpl *x509lite.Template) {
		tmpl.Subject = x509lite.Name{}
	})
	fs = RunAll(empty, nil)
	if !hasLint(fs, "subject_empty") {
		t.Error("fully empty subject not flagged")
	}
	if hasLint(fs, "subject_ip") || hasLint(fs, "subject_private_ip") {
		t.Error("empty subject misparsed as an IP address")
	}
}

// TestNotAfterBeforeNotBefore covers the inverted-validity boundary: a
// certificate that expires before it starts is negative, but a zero-length
// validity window is not.
func TestNotAfterBeforeNotBefore(t *testing.T) {
	inverted := lintCert(t, func(tmpl *x509lite.Template) {
		tmpl.NotBefore = time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC)
		tmpl.NotAfter = time.Date(2014, 2, 28, 23, 59, 59, 0, time.UTC)
	})
	fs := RunAll(inverted, nil)
	if !hasLint(fs, "validity_negative") {
		t.Errorf("NotAfter one second before NotBefore not flagged: %v", fs)
	}
	if hasLint(fs, "validity_excessive") {
		t.Error("inverted validity cannot also be excessive")
	}

	zero := lintCert(t, func(tmpl *x509lite.Template) {
		at := time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC)
		tmpl.NotBefore = at
		tmpl.NotAfter = at
	})
	if hasLint(RunAll(zero, nil), "validity_negative") {
		t.Error("zero-length validity flagged as negative")
	}
}

// TestEmptySANWithIPCommonName covers the paper's most common device shape:
// no SAN extension at all while the CN parses as an IP address. Both
// pathologies must be reported independently.
func TestEmptySANWithIPCommonName(t *testing.T) {
	cases := []struct {
		cn     string
		ipLint string
	}{
		{"8.8.8.8", "subject_ip"},
		{"192.168.1.1", "subject_private_ip"},
	}
	for _, tc := range cases {
		c := lintCert(t, func(tmpl *x509lite.Template) {
			tmpl.Subject.CommonName = tc.cn
			tmpl.DNSNames = nil
			tmpl.IPAddresses = nil
		})
		if len(c.DNSNames) != 0 || len(c.IPAddresses) != 0 {
			t.Fatalf("CN %s: fixture unexpectedly has a SAN", tc.cn)
		}
		fs := RunAll(c, nil)
		if !hasLint(fs, "san_missing") {
			t.Errorf("CN %s: SAN-less leaf not flagged san_missing (%v)", tc.cn, fs)
		}
		if !hasLint(fs, tc.ipLint) {
			t.Errorf("CN %s: %s not flagged alongside san_missing (%v)", tc.cn, tc.ipLint, fs)
		}
	}

	// The CN being an IP must not count as an IP SAN: only a real SAN
	// extension satisfies san_missing.
	withSAN := lintCert(t, func(tmpl *x509lite.Template) {
		tmpl.Subject.CommonName = "8.8.8.8"
		tmpl.DNSNames = nil
		tmpl.IPAddresses = []net.IP{net.IPv4(8, 8, 8, 8)}
	})
	fs := RunAll(withSAN, nil)
	if hasLint(fs, "san_missing") {
		t.Errorf("leaf with an IP SAN flagged san_missing (%v)", fs)
	}
	if !hasLint(fs, "subject_ip") {
		t.Errorf("IP CN not flagged once a SAN exists (%v)", fs)
	}
}
