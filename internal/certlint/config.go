package certlint

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// LintConfig adjusts one linter, keyed by its stable ID. Semantics mirror
// the repolint.json rule config:
//
//   - disabled — skip the linter entirely.
//   - only — restrict the linter to certificates matching any of the listed
//     profile names, replacing its built-in applicability mask.
//   - allow — suppress findings for certificates whose subject or issuer
//     one-line name contains any of the listed substrings (the "known
//     acceptable" escape hatch).
type LintConfig struct {
	Disabled bool     `json:"disabled,omitempty"`
	Only     []string `json:"only,omitempty"`
	Allow    []string `json:"allow,omitempty"`

	// onlyMask is Only resolved to profile bits at load time.
	onlyMask Profile
}

// Config is the parsed certlint.json: per-lint overrides over the built-in
// defaults (every registered linter enabled with its declared profiles).
type Config struct {
	Lints map[string]*LintConfig `json:"lints"`
}

// DefaultConfig returns the zero adjustment: all linters enabled, built-in
// profiles, no suppressions.
func DefaultConfig() *Config {
	return &Config{Lints: map[string]*LintConfig{}}
}

// LoadConfig reads a certlint.json and merges it over DefaultConfig. The
// merge replaces whole per-lint entries rather than merging field-by-field,
// the same rule repolint.json follows: configuring a lint at all means
// taking full responsibility for that lint's settings.
func LoadConfig(path string) (*Config, error) {
	cfg := DefaultConfig()
	if path == "" {
		return cfg, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("certlint: read config: %w", err)
	}
	var file Config
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&file); err != nil {
		return nil, fmt.Errorf("certlint: parse config %s: %w", path, err)
	}
	for id, lc := range file.Lints {
		if lc == nil {
			lc = &LintConfig{}
		}
		for _, name := range lc.Only {
			bit, ok := ParseProfile(name)
			if !ok {
				return nil, fmt.Errorf("certlint: config %s: lint %s: unknown profile %q", path, id, name)
			}
			lc.onlyMask |= bit
		}
		cfg.Lints[id] = lc
	}
	return cfg, nil
}

// lintConfig returns the entry for a lint ID, or nil when unconfigured.
func (cfg *Config) lintConfig(id string) *LintConfig {
	if cfg == nil || cfg.Lints == nil {
		return nil
	}
	return cfg.Lints[id]
}

// effectiveProfiles resolves the applicability mask for a linter under this
// config: the config's "only" mask when set, else the linter's own.
func (cfg *Config) effectiveProfiles(l Linter) Profile {
	if lc := cfg.lintConfig(l.ID); lc != nil && len(lc.Only) > 0 {
		return lc.onlyMask
	}
	return l.Profiles
}

// suppressed reports whether a finding on a certificate with the given
// subject and issuer one-line names is allowlisted for this lint.
func (cfg *Config) suppressed(id, subject, issuer string) bool {
	lc := cfg.lintConfig(id)
	if lc == nil {
		return false
	}
	for _, pat := range lc.Allow {
		if pat == "" {
			continue
		}
		if strings.Contains(subject, pat) || strings.Contains(issuer, pat) {
			return true
		}
	}
	return false
}
