package snapshot

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"securepki/internal/netsim"
	"securepki/internal/scanstore"
	"securepki/internal/x509lite"
)

// headerFixed is the byte length of the fixed header before the shard table.
const headerFixed = 8 + 3*8 + 2*4

// tableEntry is the byte length of one shard-table entry.
const tableEntry = 4*8 + 32

// Read loads a corpus snapshot in any format: the first bytes select the
// decoder (gzip magic → v1 gob via scanstore.ReadFrom, "SPKISNP2" → v2
// columnar, "SPKISNP3" → v3 columnar + indexes). All input is treated as
// hostile — truncation, corruption and absurd length fields yield explicit
// errors, never panics or unbounded allocation.
func Read(r io.Reader, opt Options) (*scanstore.Corpus, error) {
	opt = opt.withDefaults()
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(2)
	if err != nil {
		return nil, fmt.Errorf("snapshot: read magic: %w", err)
	}
	if head[0] == 0x1f && head[1] == 0x8b {
		c, err := scanstore.ReadFrom(br)
		if err != nil {
			return nil, fmt.Errorf("snapshot: v1: %w", err)
		}
		opt.Obs.Counter("snapshot.decode.v1").Inc()
		return c, nil
	}
	// Inputs shorter than a full magic fall through to readV2, whose own
	// header read reports them as truncated or bad-magic.
	if magic, err := br.Peek(8); err == nil && string(magic) == MagicV3 {
		return readV3(br, opt)
	}
	return readV2(br, opt)
}

// inflateRatioBounds buckets rawLen*100/compLen per decoded shard; this data
// compresses a few-fold, so percent buckets run 1x..50x.
var inflateRatioBounds = []int64{100, 150, 200, 300, 500, 1000, 2000, 5000}

// shardMeta is one decoded shard-table entry.
type shardMeta struct {
	first, count    uint64
	rawLen, compLen uint64
}

func readV2(r io.Reader, opt Options) (*scanstore.Corpus, error) {
	// Fixed header; the magic is judged on its own so a wrong-format file is
	// reported as such rather than as a truncated header.
	fixed := make([]byte, headerFixed)
	if _, err := io.ReadFull(r, fixed[:8]); err != nil {
		return nil, fmt.Errorf("snapshot: truncated header: %w", err)
	}
	if string(fixed[:8]) != Magic {
		return nil, fmt.Errorf("snapshot: bad magic %q", fixed[:8])
	}
	if _, err := io.ReadFull(r, fixed[8:]); err != nil {
		return nil, fmt.Errorf("snapshot: truncated header: %w", err)
	}
	certCount := binary.LittleEndian.Uint64(fixed[8:])
	scanCount := binary.LittleEndian.Uint64(fixed[16:])
	obsCount := binary.LittleEndian.Uint64(fixed[24:])
	certShards := binary.LittleEndian.Uint32(fixed[32:])
	scanShards := binary.LittleEndian.Uint32(fixed[36:])
	if certCount > maxCerts || scanCount > maxScans {
		return nil, fmt.Errorf("snapshot: absurd counts: %d certs, %d scans", certCount, scanCount)
	}
	nShards := uint64(certShards) + uint64(scanShards)
	if nShards > maxShards {
		return nil, fmt.Errorf("snapshot: %d shards exceed cap %d", nShards, maxShards)
	}
	if (certCount == 0) != (certShards == 0) || (scanCount == 0) != (scanShards == 0) {
		return nil, fmt.Errorf("snapshot: shard/count mismatch: %d certs in %d shards, %d scans in %d shards",
			certCount, certShards, scanCount, scanShards)
	}

	// Shard table + header checksum.
	table := make([]byte, nShards*tableEntry)
	if _, err := io.ReadFull(r, table); err != nil {
		return nil, fmt.Errorf("snapshot: truncated shard table: %w", err)
	}
	var wantHeadSum [32]byte
	if _, err := io.ReadFull(r, wantHeadSum[:]); err != nil {
		return nil, fmt.Errorf("snapshot: truncated header checksum: %w", err)
	}
	h := sha256.New()
	h.Write(fixed)
	h.Write(table)
	if !bytes.Equal(h.Sum(nil), wantHeadSum[:]) {
		return nil, fmt.Errorf("snapshot: header checksum mismatch")
	}

	metas := make([]shardMeta, nShards)
	sums := make([][32]byte, nShards)
	for i := range metas {
		e := table[i*tableEntry:]
		metas[i] = shardMeta{
			first:   binary.LittleEndian.Uint64(e[0:]),
			count:   binary.LittleEndian.Uint64(e[8:]),
			rawLen:  binary.LittleEndian.Uint64(e[16:]),
			compLen: binary.LittleEndian.Uint64(e[24:]),
		}
		copy(sums[i][:], e[32:64])
		m := metas[i]
		if m.rawLen > maxShardRaw {
			return nil, fmt.Errorf("snapshot: shard %d claims %d raw bytes, cap %d", i, m.rawLen, maxShardRaw)
		}
		if m.rawLen > (m.compLen+1024)*maxExpansion {
			return nil, fmt.Errorf("snapshot: shard %d expansion %d -> %d exceeds ratio cap", i, m.compLen, m.rawLen)
		}
		if m.compLen > maxShardRaw {
			return nil, fmt.Errorf("snapshot: shard %d claims %d compressed bytes, cap %d", i, m.compLen, maxShardRaw)
		}
	}
	// Shards must tile [0, certCount) and [0, scanCount) contiguously.
	if err := checkTiling(metas[:certShards], certCount, "cert"); err != nil {
		return nil, err
	}
	if err := checkTiling(metas[certShards:], scanCount, "scan"); err != nil {
		return nil, err
	}

	// Pull every compressed payload off the stream serially (it is one
	// reader), growing buffers only as bytes actually arrive.
	comps := make([][]byte, nShards)
	for i, m := range metas {
		comp, err := readPayload(r, m.compLen)
		if err != nil {
			return nil, fmt.Errorf("snapshot: shard %d payload: %w", i, err)
		}
		comps[i] = comp
	}

	certParts, scanParts, err := decodeShards(metas, sums, comps, certShards, certCount, opt)
	if err != nil {
		return nil, err
	}

	// Trailing garbage is corruption, not padding.
	var trail [1]byte
	if n, _ := r.Read(trail[:]); n != 0 {
		return nil, fmt.Errorf("snapshot: trailing bytes after last shard")
	}

	c, err := assembleCorpus(certParts, scanParts, obsCount)
	if err != nil {
		return nil, err
	}
	opt.Obs.Counter("snapshot.decode.shards").Add(int64(nShards))
	opt.Obs.Counter("snapshot.decode.certs").Add(int64(certCount))
	opt.Obs.Counter("snapshot.decode.scans").Add(int64(scanCount))
	opt.Obs.Counter("snapshot.decode.observations").Add(int64(obsCount))
	return c, nil
}

// decodeShards fans the decompression and column decode of every shard out
// over the worker pool: checksum, inflate, split columns, and for
// certificate shards re-parse every DER inside the worker. Shared by the v2
// and v3 streaming readers, whose payload bytes are identical.
func decodeShards(metas []shardMeta, sums [][32]byte, comps [][]byte, certShards uint32, certCount uint64, opt Options) ([][]*x509lite.Certificate, [][]decodedScan, error) {
	nShards := len(metas)
	certParts := make([][]*x509lite.Certificate, certShards)
	scanParts := make([][]decodedScan, nShards-int(certShards))
	errs := make([]error, nShards)
	forEachShard(opt.Workers, nShards, func(i int) {
		m := metas[i]
		if sum := sha256.Sum256(comps[i]); sum != sums[i] {
			errs[i] = fmt.Errorf("snapshot: shard %d checksum mismatch", i)
			return
		}
		raw, err := gunzipShard(comps[i], m.rawLen)
		if err != nil {
			errs[i] = fmt.Errorf("snapshot: shard %d: %w", i, err)
			return
		}
		// Shard i is a stable identity, so it doubles as the counter shard;
		// ratios are pure functions of the file bytes.
		opt.Obs.Counter("snapshot.decode.raw_bytes").AddShard(i, int64(len(raw)))
		opt.Obs.Counter("snapshot.decode.comp_bytes").AddShard(i, int64(len(comps[i])))
		if len(comps[i]) > 0 {
			opt.Obs.Histogram("snapshot.decode.inflate_ratio_pct", inflateRatioBounds).
				Observe(int64(len(raw)) * 100 / int64(len(comps[i])))
		}
		if i < int(certShards) {
			certs, err := decodeCertShard(raw, int(m.count), opt.VerifyDigests)
			if err != nil {
				errs[i] = fmt.Errorf("snapshot: cert shard %d: %w", i, err)
				return
			}
			certParts[i] = certs
			if opt.VerifyDigests {
				opt.Obs.Counter("snapshot.decode.digest_verify").AddShard(i, int64(m.count))
			}
		} else {
			scans, err := decodeScanShard(raw, int(m.count), certCount)
			if err != nil {
				errs[i] = fmt.Errorf("snapshot: scan shard %d: %w", i, err)
				return
			}
			scanParts[i-int(certShards)] = scans
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return certParts, scanParts, nil
}

// assembleCorpus interns certificates and appends scans serially in shard
// order, keeping IDs and scan order deterministic, then cross-checks the
// header's observation count against what the shards actually carried.
func assembleCorpus(certParts [][]*x509lite.Certificate, scanParts [][]decodedScan, obsCount uint64) (*scanstore.Corpus, error) {
	c := scanstore.NewCorpus()
	idx := 0
	for _, part := range certParts {
		for _, cert := range part {
			if got := c.Intern(cert); int(got) != idx {
				return nil, fmt.Errorf("snapshot: duplicate certificate at index %d", idx)
			}
			idx++
		}
	}
	var totalObs uint64
	for _, part := range scanParts {
		for _, ds := range part {
			totalObs += uint64(len(ds.obs))
			if _, err := c.AddScan(ds.op, ds.at, ds.obs); err != nil {
				return nil, fmt.Errorf("snapshot: %w", err)
			}
		}
	}
	if totalObs != obsCount {
		return nil, fmt.Errorf("snapshot: header claims %d observations, shards carry %d", obsCount, totalObs)
	}
	return c, nil
}

// checkTiling verifies that shard ranges cover [0, total) in order with no
// gaps or overlaps.
func checkTiling(metas []shardMeta, total uint64, kind string) error {
	var next uint64
	for i, m := range metas {
		if m.first != next {
			return fmt.Errorf("snapshot: %s shard %d starts at %d, want %d", kind, i, m.first, next)
		}
		if m.count == 0 {
			return fmt.Errorf("snapshot: %s shard %d is empty", kind, i)
		}
		next += m.count
		if next > total {
			return fmt.Errorf("snapshot: %s shards overrun count %d", kind, total)
		}
	}
	if next != total {
		return fmt.Errorf("snapshot: %s shards cover %d of %d", kind, next, total)
	}
	return nil
}

// readPayload reads exactly n bytes, growing the buffer as data arrives so a
// hostile length field cannot force a huge up-front allocation.
func readPayload(r io.Reader, n uint64) ([]byte, error) {
	const chunk = 1 << 20
	if n <= chunk {
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("truncated: %w", err)
		}
		return buf, nil
	}
	buf := make([]byte, 0, chunk)
	for uint64(len(buf)) < n {
		take := n - uint64(len(buf))
		if take > chunk {
			take = chunk
		}
		lo := len(buf)
		buf = append(buf, make([]byte, take)...)
		if _, err := io.ReadFull(r, buf[lo:]); err != nil {
			return nil, fmt.Errorf("truncated: %w", err)
		}
	}
	return buf, nil
}

// gunzipShard inflates a shard payload, insisting on the exact advertised
// length: shorter is truncation, longer is a lying header (or a bomb).
func gunzipShard(comp []byte, rawLen uint64) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(comp))
	if err != nil {
		return nil, fmt.Errorf("gzip: %w", err)
	}
	raw := make([]byte, rawLen)
	if _, err := io.ReadFull(zr, raw); err != nil {
		return nil, fmt.Errorf("gzip payload shorter than advertised: %w", err)
	}
	var extra [1]byte
	if n, _ := zr.Read(extra[:]); n != 0 {
		return nil, fmt.Errorf("gzip payload longer than advertised")
	}
	if err := zr.Close(); err != nil {
		return nil, fmt.Errorf("gzip close: %w", err)
	}
	return raw, nil
}

// decodeCertShard splits the three certificate columns and parses every DER.
func decodeCertShard(raw []byte, count int, verify bool) ([]*x509lite.Certificate, error) {
	// Every certificate occupies at least one length byte plus its 32-byte
	// digest, so a count the payload cannot back is rejected before any
	// count-sized allocation happens.
	if uint64(count)*33 > uint64(len(raw)) {
		return nil, fmt.Errorf("payload of %d bytes cannot hold %d certificates", len(raw), count)
	}
	lens := make([]int, count)
	off := 0
	var total uint64
	for i := range lens {
		v, n := binary.Uvarint(raw[off:])
		if n <= 0 {
			return nil, fmt.Errorf("length column truncated at cert %d", i)
		}
		if v == 0 || v > MaxCertDER {
			return nil, fmt.Errorf("cert %d claims %d DER bytes, cap %d", i, v, MaxCertDER)
		}
		lens[i] = int(v)
		total += v
		off += n
	}
	if uint64(len(raw)-off) != total+uint64(count)*32 {
		return nil, fmt.Errorf("columns carry %d bytes, want %d DER + %d digest", len(raw)-off, total, count*32)
	}
	ders := raw[off : off+int(total)]
	fps := raw[off+int(total):]
	certs := make([]*x509lite.Certificate, count)
	pos := 0
	for i := range certs {
		der := ders[pos : pos+lens[i]]
		pos += lens[i]
		var fp x509lite.Fingerprint
		copy(fp[:], fps[i*32:])
		if verify {
			if got := x509lite.FingerprintBytes(der); got != fp {
				return nil, fmt.Errorf("cert %d digest mismatch: stored %s, computed %s", i, fp, got)
			}
		}
		cert, err := x509lite.ParseWithDigest(der, fp)
		if err != nil {
			return nil, fmt.Errorf("cert %d: %w", i, err)
		}
		certs[i] = cert
	}
	return certs, nil
}

// decodedScan is one scan reconstructed from the columns, pending AddScan.
type decodedScan struct {
	op  scanstore.Operator
	at  time.Time
	obs []scanstore.Observation
}

// decodeScanShard reads the metadata column then the two delta columns.
func decodeScanShard(raw []byte, count int, certCount uint64) ([]decodedScan, error) {
	// Each scan occupies at least four metadata bytes; reject counts the
	// payload cannot back before allocating anything count-sized.
	if uint64(count)*4 > uint64(len(raw)) {
		return nil, fmt.Errorf("payload of %d bytes cannot hold %d scans", len(raw), count)
	}
	scans := make([]decodedScan, count)
	obsCounts := make([]uint64, count)
	off := 0
	uv := func(what string, i int) (uint64, error) {
		v, n := binary.Uvarint(raw[off:])
		if n <= 0 {
			return 0, fmt.Errorf("%s column truncated at scan %d", what, i)
		}
		off += n
		return v, nil
	}
	sv := func(what string, i int) (int64, error) {
		v, n := binary.Varint(raw[off:])
		if n <= 0 {
			return 0, fmt.Errorf("%s column truncated at scan %d", what, i)
		}
		off += n
		return v, nil
	}
	prevSec := int64(0)
	var totalObs uint64
	for i := range scans {
		op, err := uv("operator", i)
		if err != nil {
			return nil, err
		}
		if op > 1<<20 {
			return nil, fmt.Errorf("scan %d operator %d is absurd", i, op)
		}
		delta, err := sv("time", i)
		if err != nil {
			return nil, err
		}
		sec := prevSec + delta // the first scan's delta is absolute (base 0)
		prevSec = sec
		nanos, err := uv("nanos", i)
		if err != nil {
			return nil, err
		}
		if nanos >= 1e9 {
			return nil, fmt.Errorf("scan %d claims %d nanoseconds", i, nanos)
		}
		nObs, err := uv("obs count", i)
		if err != nil {
			return nil, err
		}
		// Each observation needs at least one byte per delta column, so any
		// single claim past half the payload is a lie. Bounding every term
		// before accumulating also keeps the running total from wrapping
		// uint64 under the cap below (each side is <= len(raw)/2, so their
		// sum cannot overflow) and from reaching the make() call.
		if nObs > uint64(len(raw))/2 {
			return nil, fmt.Errorf("scan %d claims %d observations in a %d-byte payload", i, nObs, len(raw))
		}
		totalObs += nObs
		if totalObs > uint64(len(raw))/2 {
			return nil, fmt.Errorf("payload of %d bytes cannot hold %d observations", len(raw), totalObs)
		}
		scans[i] = decodedScan{
			op: scanstore.Operator(op),
			at: time.Unix(sec, int64(nanos)).UTC(),
		}
		obsCounts[i] = nObs
	}
	if uint64(len(raw)-off) < 2*totalObs {
		return nil, fmt.Errorf("delta columns carry %d bytes for %d observations", len(raw)-off, totalObs)
	}
	for i := range scans {
		scans[i].obs = make([]scanstore.Observation, obsCounts[i])
	}
	for i := range scans {
		prev := int64(0)
		for j := range scans[i].obs {
			d, err := sv("cert delta", i)
			if err != nil {
				return nil, err
			}
			id := prev + d
			if id < 0 || uint64(id) >= certCount {
				return nil, fmt.Errorf("scan %d observation %d references cert %d of %d", i, j, id, certCount)
			}
			prev = id
			scans[i].obs[j].Cert = scanstore.CertID(id)
		}
	}
	for i := range scans {
		prev := int64(0)
		for j := range scans[i].obs {
			d, err := sv("ip delta", i)
			if err != nil {
				return nil, err
			}
			ip := prev + d
			if ip < 0 || ip > 0xffffffff {
				return nil, fmt.Errorf("scan %d observation %d IP %d outside IPv4", i, j, ip)
			}
			prev = ip
			scans[i].obs[j].IP = netsim.IP(uint32(ip))
		}
	}
	if off != len(raw) {
		return nil, fmt.Errorf("%d trailing bytes after columns", len(raw)-off)
	}
	return scans, nil
}
