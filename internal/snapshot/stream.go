package snapshot

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"io"
	"math"
	"sort"
	"time"

	"securepki/internal/extsort"
	"securepki/internal/netsim"
	"securepki/internal/scanstore"
	"securepki/internal/x509lite"
)

// StreamWriter emits a v2 or v3 snapshot without a resident corpus. Certs
// and observations arrive incrementally — Intern as certificates are first
// seen (in global scan-major order), AddObs per sighting — and everything
// bulky transits disk: cert shards compress straight into a checksummed
// payload spill as every CertsPerShard-th certificate arrives, per-scan
// observation columns overflow to spill files past a small threshold, and
// the v3 IP/AS postings accumulate in external-merge sorters. What stays
// resident is per-certificate constant-size state (fingerprint, SPKI,
// DER location — needed by the v3 index anyway) and the fingerprint dedup
// map.
//
// The output is byte-identical to Write/WriteV3 over the equivalent corpus:
// shard boundaries come from the same sizing knobs, gzip sees the same raw
// byte stream (chunked writes change no deflate output), and every v3
// section is emitted in the same total order the in-memory builder sorts
// into. The streaming goldens in core pin this equivalence.
type StreamWriter struct {
	opt Options
	cfg StreamWriterConfig

	// Resident per-certificate state, CertID order.
	fps   []x509lite.Fingerprint
	spkis []x509lite.Fingerprint
	locs  []fpLoc
	byFP  map[x509lite.Fingerprint]scanstore.CertID

	pendDER  [][]byte // current cert shard's DERs
	payload  *extsort.SpillFile
	shardTab []streamShardEntry

	scans []*streamScan
	cur   *streamScan

	ipSort *extsort.Sorter[ipRec]
	asSort *extsort.Sorter[asRec]

	derSpill *extsort.SpillFile

	err error
}

// StreamWriterConfig sizes the writer's memory envelope.
type StreamWriterConfig struct {
	// SpillDir hosts the payload, column and sorter spills ("" = OS temp).
	SpillDir string
	// MemBudget bounds the IP/AS sorter buffers (<= 0 means
	// extsort.DefaultMemBudget, split between them).
	MemBudget int64
	// V3 selects the indexed format; Finish then writes MagicV3 plus the
	// five index sections. Off, Finish writes plain v2.
	V3 bool
	// KeepDERs retains a spill of every interned DER so EachCert can replay
	// the certificate table after Finish (the lint pass needs this).
	KeepDERs bool
}

// streamShardEntry is one shard-table row accumulated as payloads flush.
type streamShardEntry struct {
	first, count  int
	rawLen, cLen  int64
	sum           [32]byte
}

// streamScan is one scan's accumulating state: metadata plus the two
// delta-encoded observation columns.
type streamScan struct {
	op      scanstore.Operator
	at      time.Time
	count   uint64
	prevC   int64
	prevIP  int64
	certCol *spillColumn
	ipCol   *spillColumn
}

// ipRec and asRec are the external-sort records behind the v3 IP and AS
// sections. Order includes the cert ID so duplicates land adjacent; the
// final ref order is recovered per group at merge time.
type ipRec struct{ ip, scan, cert uint32 }
type asRec struct{ asn, cert uint32 }

// NewStreamWriter prepares an empty streaming writer.
func NewStreamWriter(opt Options, cfg StreamWriterConfig) (*StreamWriter, error) {
	opt = opt.withDefaults()
	sw := &StreamWriter{opt: opt, cfg: cfg, byFP: make(map[x509lite.Fingerprint]scanstore.CertID)}
	var err error
	if sw.payload, err = extsort.NewSpillFile(cfg.SpillDir, "snapshot-payload-*.spill"); err != nil {
		return nil, err
	}
	if cfg.KeepDERs {
		if sw.derSpill, err = extsort.NewSpillFile(cfg.SpillDir, "snapshot-ders-*.spill"); err != nil {
			sw.Close()
			return nil, err
		}
	}
	if cfg.V3 {
		budget := cfg.MemBudget
		if budget <= 0 {
			budget = extsort.DefaultMemBudget
		}
		sw.ipSort, err = extsort.NewSorter(extsort.Config[ipRec]{
			Size: 12,
			Encode: func(dst []byte, r ipRec) {
				binary.LittleEndian.PutUint32(dst, r.ip)
				binary.LittleEndian.PutUint32(dst[4:], r.scan)
				binary.LittleEndian.PutUint32(dst[8:], r.cert)
			},
			Decode: func(src []byte) ipRec {
				return ipRec{
					ip:   binary.LittleEndian.Uint32(src),
					scan: binary.LittleEndian.Uint32(src[4:]),
					cert: binary.LittleEndian.Uint32(src[8:]),
				}
			},
			Less: func(a, b ipRec) bool {
				if a.ip != b.ip {
					return a.ip < b.ip
				}
				if a.scan != b.scan {
					return a.scan < b.scan
				}
				return a.cert < b.cert
			},
			MemBudget: budget / 4,
			Dir:       cfg.SpillDir,
		})
		if err != nil {
			sw.Close()
			return nil, err
		}
		if opt.ASOf != nil {
			sw.asSort, err = extsort.NewSorter(extsort.Config[asRec]{
				Size: 8,
				Encode: func(dst []byte, r asRec) {
					binary.LittleEndian.PutUint32(dst, r.asn)
					binary.LittleEndian.PutUint32(dst[4:], r.cert)
				},
				Decode: func(src []byte) asRec {
					return asRec{asn: binary.LittleEndian.Uint32(src), cert: binary.LittleEndian.Uint32(src[4:])}
				},
				Less: func(a, b asRec) bool {
					if a.asn != b.asn {
						return a.asn < b.asn
					}
					return a.cert < b.cert
				},
				MemBudget: budget / 4,
				Dir:       cfg.SpillDir,
			})
			if err != nil {
				sw.Close()
				return nil, err
			}
		}
	}
	return sw, nil
}

// NumCerts returns how many distinct certificates have been interned.
func (sw *StreamWriter) NumCerts() int { return len(sw.fps) }

// Lookup returns the ID of an already-interned fingerprint.
func (sw *StreamWriter) Lookup(fp x509lite.Fingerprint) (scanstore.CertID, bool) {
	id, ok := sw.byFP[fp]
	return id, ok
}

// Intern deduplicates one certificate by fingerprint, appending it to the
// table (and the pending cert shard) when new. The DER is copied; callers
// may reuse the buffer. Returns the ID and whether the cert was new.
func (sw *StreamWriter) Intern(der []byte, fp, spki x509lite.Fingerprint) (scanstore.CertID, bool, error) {
	if sw.err != nil {
		return 0, false, sw.err
	}
	if id, ok := sw.byFP[fp]; ok {
		return id, false, nil
	}
	if len(der) == 0 || len(der) > MaxCertDER {
		return 0, false, sw.fail(fmt.Errorf("snapshot: cert %d DER length %d outside (0, %d]", len(sw.fps), len(der), MaxCertDER))
	}
	if len(sw.fps) >= maxCerts {
		return 0, false, sw.fail(fmt.Errorf("snapshot: %d certificates exceed format cap", len(sw.fps)+1))
	}
	id := scanstore.CertID(len(sw.fps))
	sw.byFP[fp] = id
	sw.fps = append(sw.fps, fp)
	sw.spkis = append(sw.spkis, spki)
	sw.pendDER = append(sw.pendDER, append([]byte(nil), der...))
	if sw.derSpill != nil {
		var head [68]byte
		copy(head[:32], fp[:])
		copy(head[32:64], spki[:])
		binary.LittleEndian.PutUint32(head[64:], uint32(len(der)))
		if _, err := sw.derSpill.Write(head[:]); err != nil {
			return 0, false, sw.fail(err)
		}
		if _, err := sw.derSpill.Write(der); err != nil {
			return 0, false, sw.fail(err)
		}
	}
	if len(sw.pendDER) >= sw.opt.CertsPerShard {
		if err := sw.flushCertShard(); err != nil {
			return 0, false, sw.fail(err)
		}
	}
	return id, true, nil
}

// BeginScan opens the next scan (chronological, like Corpus.AddScan); all
// following AddObs calls belong to it.
func (sw *StreamWriter) BeginScan(op scanstore.Operator, at time.Time) error {
	if sw.err != nil {
		return sw.err
	}
	if len(sw.scans) >= maxScans {
		return sw.fail(fmt.Errorf("snapshot: %d scans exceed format cap", len(sw.scans)+1))
	}
	if int64(op) < 0 || int64(op) > 1<<20 {
		return sw.fail(fmt.Errorf("snapshot: scan %d operator %d outside format range", len(sw.scans), op))
	}
	if n := len(sw.scans); n > 0 && at.Before(sw.scans[n-1].at) {
		return sw.fail(fmt.Errorf("snapshot: scan at %v begun after %v", at, sw.scans[n-1].at))
	}
	s := &streamScan{
		op: op, at: at,
		certCol: newSpillColumn(sw.cfg.SpillDir),
		ipCol:   newSpillColumn(sw.cfg.SpillDir),
	}
	sw.scans = append(sw.scans, s)
	sw.cur = s
	return nil
}

// AddObs records one sighting of an interned certificate in the current
// scan. Sightings must arrive in the corpus's observation order (global
// host order) for byte equivalence with the in-memory writer.
func (sw *StreamWriter) AddObs(id scanstore.CertID, ip netsim.IP) error {
	if sw.err != nil {
		return sw.err
	}
	s := sw.cur
	if s == nil {
		return sw.fail(fmt.Errorf("snapshot: AddObs before BeginScan"))
	}
	if int(id) < 0 || int(id) >= len(sw.fps) {
		return sw.fail(fmt.Errorf("snapshot: observation of unknown cert %d", id))
	}
	if s.count >= math.MaxUint32 {
		return sw.fail(fmt.Errorf("snapshot: scan %d has %d observations, cap %d", len(sw.scans)-1, s.count+1, uint32(math.MaxUint32)))
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], int64(id)-s.prevC)
	if err := s.certCol.append(tmp[:n]); err != nil {
		return sw.fail(err)
	}
	s.prevC = int64(id)
	n = binary.PutVarint(tmp[:], int64(ip)-s.prevIP)
	if err := s.ipCol.append(tmp[:n]); err != nil {
		return sw.fail(err)
	}
	s.prevIP = int64(ip)
	s.count++

	if sw.ipSort != nil {
		scan := uint32(len(sw.scans) - 1)
		if err := sw.ipSort.Add(ipRec{ip: uint32(ip), scan: scan, cert: uint32(id)}); err != nil {
			return sw.fail(err)
		}
		if sw.asSort != nil {
			if asn, ok := sw.opt.ASOf(ip, s.at); ok {
				if asn < 0 || int64(asn) > math.MaxUint32 {
					return sw.fail(fmt.Errorf("snapshot: AS number %d outside uint32", asn))
				}
				if err := sw.asSort.Add(asRec{asn: uint32(asn), cert: uint32(id)}); err != nil {
					return sw.fail(err)
				}
			}
		}
	}
	return nil
}

// SpillStats reports the writer's disk footprint so far: spilled sorter
// runs and total spill bytes across payload, columns and DER retention.
func (sw *StreamWriter) SpillStats() (runs int, bytes int64) {
	if sw.ipSort != nil {
		runs += sw.ipSort.Runs()
	}
	if sw.asSort != nil {
		runs += sw.asSort.Runs()
	}
	bytes = sw.payload.Len()
	for _, s := range sw.scans {
		bytes += s.certCol.spilledBytes() + s.ipCol.spilledBytes()
	}
	if sw.derSpill != nil {
		bytes += sw.derSpill.Len()
	}
	return runs, bytes
}

// MergeFanIn reports the widest k-way merge Finish will perform across the
// index sorters (0 when the writer has no v3 sorters).
func (sw *StreamWriter) MergeFanIn() int {
	n := 0
	if sw.ipSort != nil && sw.ipSort.FanIn() > n {
		n = sw.ipSort.FanIn()
	}
	if sw.asSort != nil && sw.asSort.FanIn() > n {
		n = sw.asSort.FanIn()
	}
	return n
}

func (sw *StreamWriter) fail(err error) error {
	if sw.err == nil {
		sw.err = err
	}
	return sw.err
}

// flushCertShard compresses the pending certificate shard straight into the
// payload spill, recording its table entry and the per-cert DER locations
// the v3 fingerprint index needs.
func (sw *StreamWriter) flushCertShard() error {
	if len(sw.pendDER) == 0 {
		return nil
	}
	shard := len(sw.shardTab)
	first := len(sw.fps) - len(sw.pendDER)

	// DER locations replay the shard layout: the uvarint length column
	// precedes the concatenated DER bytes.
	off := 0
	for _, der := range sw.pendDER {
		off += uvarintLen(uint64(len(der)))
	}
	for j, der := range sw.pendDER {
		sw.locs = append(sw.locs, fpLoc{
			fp:    sw.fps[first+j],
			shard: uint32(shard),
			off:   uint32(off),
			dlen:  uint32(len(der)),
		})
		off += len(der)
	}

	fw := newFlushWriter(sw.payload)
	zw, err := gzip.NewWriterLevel(fw, shardCompression)
	if err != nil {
		return err
	}
	raw := int64(0)
	write := func(p []byte) error {
		if err != nil {
			return err
		}
		_, err = zw.Write(p)
		raw += int64(len(p))
		return err
	}
	var tmp [binary.MaxVarintLen64]byte
	for _, der := range sw.pendDER {
		if err := write(tmp[:binary.PutUvarint(tmp[:], uint64(len(der)))]); err != nil {
			return err
		}
	}
	for _, der := range sw.pendDER {
		if err := write(der); err != nil {
			return err
		}
	}
	for j := range sw.pendDER {
		if err := write(sw.fps[first+j][:]); err != nil {
			return err
		}
	}
	if err := zw.Close(); err != nil {
		return err
	}
	if fw.err != nil {
		return fw.err
	}
	sw.shardTab = append(sw.shardTab, streamShardEntry{
		first: first, count: len(sw.pendDER),
		rawLen: raw, cLen: fw.n, sum: fw.sum(),
	})
	sw.pendDER = sw.pendDER[:0]
	return nil
}

// flushScanShards assembles the scan shards (groups of ScansPerShard) from
// the per-scan columns, compressing each into the payload spill after the
// cert shards — the same payload order the in-memory writer produces.
func (sw *StreamWriter) flushScanShards() error {
	var tmp [binary.MaxVarintLen64]byte
	for lo := 0; lo < len(sw.scans); lo += sw.opt.ScansPerShard {
		hi := lo + sw.opt.ScansPerShard
		if hi > len(sw.scans) {
			hi = len(sw.scans)
		}
		fw := newFlushWriter(sw.payload)
		zw, err := gzip.NewWriterLevel(fw, shardCompression)
		if err != nil {
			return err
		}
		raw := int64(0)
		write := func(p []byte) error {
			if err != nil {
				return err
			}
			_, err = zw.Write(p)
			raw += int64(len(p))
			return err
		}
		prevSec := int64(0)
		for i, s := range sw.scans[lo:hi] {
			if err := write(tmp[:binary.PutUvarint(tmp[:], uint64(s.op))]); err != nil {
				return err
			}
			sec := s.at.Unix()
			delta := sec
			if i > 0 {
				delta = sec - prevSec
			}
			prevSec = sec
			if err := write(tmp[:binary.PutVarint(tmp[:], delta)]); err != nil {
				return err
			}
			if err := write(tmp[:binary.PutUvarint(tmp[:], uint64(s.at.Nanosecond()))]); err != nil {
				return err
			}
			if err := write(tmp[:binary.PutUvarint(tmp[:], s.count)]); err != nil {
				return err
			}
		}
		cw := &countWriter{w: zw}
		for _, s := range sw.scans[lo:hi] {
			if err := s.certCol.drain(cw); err != nil {
				return err
			}
		}
		for _, s := range sw.scans[lo:hi] {
			if err := s.ipCol.drain(cw); err != nil {
				return err
			}
		}
		raw += cw.n
		if err != nil {
			return err
		}
		if err := zw.Close(); err != nil {
			return err
		}
		if fw.err != nil {
			return fw.err
		}
		sw.shardTab = append(sw.shardTab, streamShardEntry{
			first: lo, count: hi - lo,
			rawLen: raw, cLen: fw.n, sum: fw.sum(),
		})
	}
	return nil
}

// Finish flushes everything and writes the complete snapshot to w. The
// writer remains readable (EachCert) but accepts no further data.
func (sw *StreamWriter) Finish(w io.Writer) error {
	if sw.err != nil {
		return sw.err
	}
	if err := sw.flushCertShard(); err != nil {
		return sw.fail(err)
	}
	nCertShards := len(sw.shardTab)
	if err := sw.flushScanShards(); err != nil {
		return sw.fail(err)
	}
	if len(sw.shardTab) > maxShards {
		return sw.fail(fmt.Errorf("snapshot: %d shards exceed format cap %d; raise CertsPerShard/ScansPerShard",
			len(sw.shardTab), maxShards))
	}
	var obsCount uint64
	for _, s := range sw.scans {
		obsCount += s.count
	}

	var sections [V3SectionCount]v3SectionData
	var ipPost, asPost *spillColumn
	if sw.cfg.V3 {
		var err error
		if sections, ipPost, asPost, err = sw.buildSections(); err != nil {
			return sw.fail(err)
		}
		defer ipPost.close()
		defer asPost.close()
	}

	var head bytes.Buffer
	if sw.cfg.V3 {
		head.WriteString(MagicV3)
	} else {
		head.WriteString(Magic)
	}
	putU64(&head, uint64(len(sw.fps)))
	putU64(&head, uint64(len(sw.scans)))
	putU64(&head, obsCount)
	putU32(&head, uint32(nCertShards))
	putU32(&head, uint32(len(sw.shardTab)-nCertShards))
	if sw.cfg.V3 {
		putU32(&head, V3SectionCount)
		putU32(&head, 0) // reserved
	}
	for _, sh := range sw.shardTab {
		putU64(&head, uint64(sh.first))
		putU64(&head, uint64(sh.count))
		putU64(&head, uint64(sh.rawLen))
		putU64(&head, uint64(sh.cLen))
		head.Write(sh.sum[:])
	}
	if sw.cfg.V3 {
		for i, s := range sections {
			putU32(&head, s.kind)
			putU32(&head, v3EntrySize(s.kind))
			putU64(&head, s.keyCount)
			postLen := int64(len(s.post))
			var sum [32]byte
			switch i {
			case 2, 3: // IP and AS postings live in spill columns
				sp := ipPost
				if i == 3 {
					sp = asPost
				}
				postLen = sp.len()
				h := sha256.New()
				h.Write(s.keys)
				if err := sp.drain(h); err != nil {
					return sw.fail(err)
				}
				h.Sum(sum[:0])
			default:
				sum = sha256SectionSum(s.keys, s.post)
			}
			putU64(&head, uint64(postLen))
			putU64(&head, 0) // reserved
			head.Write(sum[:])
		}
		headSum := sha256SectionSum(head.Bytes(), nil)
		head.Write(headSum[:])
	} else {
		headSum := sha256.Sum256(head.Bytes())
		head.Write(headSum[:])
	}
	if _, err := w.Write(head.Bytes()); err != nil {
		return sw.fail(fmt.Errorf("snapshot: write header: %w", err))
	}

	// Payload shards, re-verified against the write-time digest.
	if err := sw.payload.VerifyCopy(w); err != nil {
		return sw.fail(err)
	}
	if !sw.cfg.V3 {
		sw.emitObs(obsCount, nCertShards)
		return nil
	}
	off := int64(head.Len()) + sw.payload.Len()
	var zeros [8]byte
	writePad := func() error {
		if n := pad8(off); n > 0 {
			if _, err := w.Write(zeros[:n]); err != nil {
				return fmt.Errorf("snapshot: write padding: %w", err)
			}
			off += n
		}
		return nil
	}
	if err := writePad(); err != nil {
		return sw.fail(err)
	}
	var indexBytes int64
	for i, s := range sections {
		if _, err := w.Write(s.keys); err != nil {
			return sw.fail(fmt.Errorf("snapshot: write index section %d keys: %w", i, err))
		}
		off += int64(len(s.keys))
		indexBytes += int64(len(s.keys))
		switch i {
		case 2, 3:
			sp := ipPost
			if i == 3 {
				sp = asPost
			}
			cw := &countWriter{w: w}
			if err := sp.drain(cw); err != nil {
				return sw.fail(err)
			}
			off += cw.n
			indexBytes += cw.n
		default:
			if _, err := w.Write(s.post); err != nil {
				return sw.fail(fmt.Errorf("snapshot: write index section %d postings: %w", i, err))
			}
			off += int64(len(s.post))
			indexBytes += int64(len(s.post))
		}
		if err := writePad(); err != nil {
			return sw.fail(err)
		}
	}
	sw.emitObs(obsCount, nCertShards)
	sw.opt.Obs.Counter("snapshot.encode.index_bytes").Add(indexBytes)
	return nil
}

// emitObs mirrors the in-memory writer's snapshot.encode.* counters.
func (sw *StreamWriter) emitObs(obsCount uint64, nCertShards int) {
	reg := sw.opt.Obs
	reg.Counter("snapshot.encode.shards").Add(int64(len(sw.shardTab)))
	reg.Counter("snapshot.encode.certs").Add(int64(len(sw.fps)))
	reg.Counter("snapshot.encode.scans").Add(int64(len(sw.scans)))
	reg.Counter("snapshot.encode.observations").Add(int64(obsCount))
	var raw, comp int64
	for _, sh := range sw.shardTab {
		raw += sh.rawLen
		comp += sh.cLen
	}
	reg.Counter("snapshot.encode.raw_bytes").Add(raw)
	reg.Counter("snapshot.encode.comp_bytes").Add(comp)
}

// buildSections constructs the five v3 sections from the resident per-cert
// arrays and the external sorters. The fp/SPKI/scan-meta sections match
// buildV3Sections' emission exactly; the IP and AS sections stream out of
// the sorters group by group, re-sorting each (tiny) group by index
// position, which reproduces the in-memory (key, ref) sort order.
func (sw *StreamWriter) buildSections() (out [V3SectionCount]v3SectionData, ipPost, asPost *spillColumn, err error) {
	nCerts := len(sw.fps)
	order := make([]int, nCerts)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return bytes.Compare(sw.fps[order[a]][:], sw.fps[order[b]][:]) < 0
	})
	refOf := make([]uint32, nCerts)
	fpKeys := make([]byte, nCerts*V3FPEntry)
	for pos, id := range order {
		refOf[id] = uint32(pos)
		l := sw.locs[id]
		e := fpKeys[pos*V3FPEntry:]
		copy(e[:32], l.fp[:])
		binary.LittleEndian.PutUint32(e[32:], l.shard)
		binary.LittleEndian.PutUint32(e[36:], l.off)
		binary.LittleEndian.PutUint32(e[40:], l.dlen)
	}
	out[0] = v3SectionData{kind: V3KindFP, keyCount: uint64(nCerts), keys: fpKeys}

	spkiOrder := order // reuse: re-sorted by (spki, ref)
	sort.Slice(spkiOrder, func(a, b int) bool {
		ia, ib := spkiOrder[a], spkiOrder[b]
		if cmp := bytes.Compare(sw.spkis[ia][:], sw.spkis[ib][:]); cmp != 0 {
			return cmp < 0
		}
		return refOf[ia] < refOf[ib]
	})
	var spkiKeys, spkiPost []byte
	for lo := 0; lo < len(spkiOrder); {
		hi := lo
		for hi < len(spkiOrder) && sw.spkis[spkiOrder[hi]] == sw.spkis[spkiOrder[lo]] {
			hi++
		}
		var e [V3SPKIEntry]byte
		copy(e[:32], sw.spkis[spkiOrder[lo]][:])
		binary.LittleEndian.PutUint32(e[32:], uint32(lo))
		binary.LittleEndian.PutUint32(e[36:], uint32(hi-lo))
		spkiKeys = append(spkiKeys, e[:]...)
		for _, id := range spkiOrder[lo:hi] {
			spkiPost = binary.LittleEndian.AppendUint32(spkiPost, refOf[id])
		}
		lo = hi
	}
	out[1] = v3SectionData{kind: V3KindSPKI, keyCount: uint64(len(spkiKeys) / V3SPKIEntry), keys: spkiKeys, post: spkiPost}

	// IP section: the sorter yields (ip, scan, cert) groups; per (ip, scan)
	// the distinct refs are emitted ascending, matching the in-memory
	// (ip, scan, ref) sort with consecutive-duplicate skip.
	ipPost = newSpillColumn(sw.cfg.SpillDir)
	asPost = newSpillColumn(sw.cfg.SpillDir)
	var ipKeys []byte
	{
		elems := uint32(0)
		var curIP, curScan uint32
		var started bool
		var groupRefs []uint32 // refs of the current (ip, scan) subgroup
		var ipStart, ipCount uint32
		var prevCert uint32
		var havePrev bool
		var postTmp [8]byte

		flushSubgroup := func() error {
			sort.Slice(groupRefs, func(a, b int) bool { return groupRefs[a] < groupRefs[b] })
			for _, ref := range groupRefs {
				binary.LittleEndian.PutUint32(postTmp[:4], curScan)
				binary.LittleEndian.PutUint32(postTmp[4:], ref)
				if err := ipPost.append(postTmp[:]); err != nil {
					return err
				}
			}
			ipCount += uint32(len(groupRefs))
			elems += uint32(len(groupRefs))
			groupRefs = groupRefs[:0]
			havePrev = false
			return nil
		}
		flushIP := func() {
			var e [V3IPEntry]byte
			binary.LittleEndian.PutUint32(e[0:], curIP)
			binary.LittleEndian.PutUint32(e[4:], ipStart)
			binary.LittleEndian.PutUint32(e[8:], ipCount)
			ipKeys = append(ipKeys, e[:]...)
		}
		err = sw.ipSort.Merge(func(r ipRec) error {
			if started && r.ip == curIP && r.scan == curScan {
				if havePrev && r.cert == prevCert {
					return nil // repeat sighting of the same (scan, cert) at this IP
				}
				prevCert, havePrev = r.cert, true
				groupRefs = append(groupRefs, refOf[r.cert])
				return nil
			}
			if started {
				if err := flushSubgroup(); err != nil {
					return err
				}
				if r.ip != curIP {
					flushIP()
					curIP, ipStart, ipCount = r.ip, elems, 0
				}
			} else {
				started = true
				curIP, ipStart, ipCount = r.ip, 0, 0
			}
			curScan = r.scan
			prevCert, havePrev = r.cert, true
			groupRefs = append(groupRefs, refOf[r.cert])
			return nil
		})
		if err == nil && started {
			if err = flushSubgroup(); err == nil {
				flushIP()
			}
		}
		if err != nil {
			return out, ipPost, asPost, err
		}
	}
	out[2] = v3SectionData{kind: V3KindIP, keyCount: uint64(len(ipKeys) / V3IPEntry), keys: ipKeys}

	// AS section: per asn, distinct cert refs ascending.
	var asKeys []byte
	var asKeyCount uint64
	if sw.asSort != nil {
		elems := uint32(0)
		var curASN uint32
		var started bool
		var groupRefs []uint32
		var prevCert uint32
		var havePrev bool
		var postTmp [4]byte

		flushASN := func() error {
			sort.Slice(groupRefs, func(a, b int) bool { return groupRefs[a] < groupRefs[b] })
			for _, ref := range groupRefs {
				binary.LittleEndian.PutUint32(postTmp[:], ref)
				if err := asPost.append(postTmp[:]); err != nil {
					return err
				}
			}
			var e [V3ASEntry]byte
			binary.LittleEndian.PutUint32(e[0:], curASN)
			binary.LittleEndian.PutUint32(e[4:], elems)
			binary.LittleEndian.PutUint32(e[8:], uint32(len(groupRefs)))
			asKeys = append(asKeys, e[:]...)
			elems += uint32(len(groupRefs))
			groupRefs = groupRefs[:0]
			havePrev = false
			return nil
		}
		err = sw.asSort.Merge(func(r asRec) error {
			if started && r.asn != curASN {
				if err := flushASN(); err != nil {
					return err
				}
				curASN = r.asn
			} else if !started {
				started = true
				curASN = r.asn
			}
			if havePrev && r.cert == prevCert {
				return nil
			}
			prevCert, havePrev = r.cert, true
			groupRefs = append(groupRefs, refOf[r.cert])
			return nil
		})
		if err == nil && started {
			err = flushASN()
		}
		if err != nil {
			return out, ipPost, asPost, err
		}
		asKeyCount = uint64(len(asKeys) / V3ASEntry)
	}
	out[3] = v3SectionData{kind: V3KindAS, keyCount: asKeyCount, keys: asKeys}

	metaKeys := make([]byte, len(sw.scans)*V3ScanMetaEntry)
	for i, s := range sw.scans {
		e := metaKeys[i*V3ScanMetaEntry:]
		binary.LittleEndian.PutUint32(e[0:], uint32(s.op))
		binary.LittleEndian.PutUint32(e[4:], uint32(s.at.Nanosecond()))
		binary.LittleEndian.PutUint64(e[8:], uint64(s.at.Unix()))
		binary.LittleEndian.PutUint32(e[16:], uint32(s.count))
	}
	out[4] = v3SectionData{kind: V3KindScanMeta, keyCount: uint64(len(sw.scans)), keys: metaKeys}
	return out, ipPost, asPost, nil
}

// EachCert replays every interned certificate's DER in ID order (requires
// KeepDERs). The DER slice is only valid during the callback.
func (sw *StreamWriter) EachCert(fn func(id scanstore.CertID, fp, spki x509lite.Fingerprint, der []byte) error) error {
	if sw.derSpill == nil {
		return fmt.Errorf("snapshot: EachCert without KeepDERs")
	}
	rd, err := sw.derSpill.Reader()
	if err != nil {
		return err
	}
	var head [68]byte
	var der []byte
	for id := 0; id < len(sw.fps); id++ {
		if _, err := io.ReadFull(rd, head[:]); err != nil {
			return fmt.Errorf("snapshot: DER spill truncated: %w", err)
		}
		var fp, spki x509lite.Fingerprint
		copy(fp[:], head[:32])
		copy(spki[:], head[32:64])
		dlen := binary.LittleEndian.Uint32(head[64:])
		if dlen == 0 || dlen > MaxCertDER {
			return fmt.Errorf("snapshot: DER spill corrupt length %d", dlen)
		}
		if cap(der) < int(dlen) {
			der = make([]byte, dlen)
		}
		der = der[:dlen]
		if _, err := io.ReadFull(rd, der); err != nil {
			return fmt.Errorf("snapshot: DER spill truncated: %w", err)
		}
		if err := fn(scanstore.CertID(id), fp, spki, der); err != nil {
			return err
		}
	}
	return nil
}

// SPKI returns the public-key fingerprint of an interned certificate.
func (sw *StreamWriter) SPKI(id scanstore.CertID) x509lite.Fingerprint { return sw.spkis[id] }

// Close releases every spill file and sorter. Safe to call more than once.
func (sw *StreamWriter) Close() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if sw.payload != nil {
		keep(sw.payload.Remove())
		sw.payload = nil
	}
	if sw.derSpill != nil {
		keep(sw.derSpill.Remove())
		sw.derSpill = nil
	}
	if sw.ipSort != nil {
		keep(sw.ipSort.Close())
		sw.ipSort = nil
	}
	if sw.asSort != nil {
		keep(sw.asSort.Close())
		sw.asSort = nil
	}
	for _, s := range sw.scans {
		if s.certCol != nil {
			s.certCol.close()
		}
		if s.ipCol != nil {
			s.ipCol.close()
		}
	}
	return first
}

// flushWriter tees shard bytes into the payload spill while hashing and
// counting them for the shard-table entry.
type flushWriter struct {
	w   io.Writer
	h   hash.Hash
	n   int64
	err error
}

func newFlushWriter(w io.Writer) *flushWriter {
	return &flushWriter{w: w, h: sha256.New()}
}

func (f *flushWriter) Write(p []byte) (int, error) {
	if f.err != nil {
		return 0, f.err
	}
	n, err := f.w.Write(p)
	f.h.Write(p[:n])
	f.n += int64(n)
	f.err = err
	return n, err
}

func (f *flushWriter) sum() [32]byte {
	var s [32]byte
	f.h.Sum(s[:0])
	return s
}

// countWriter counts bytes through to w.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// spillColumn buffers an append-only byte column in memory up to a small
// threshold, then overflows to a checksummed spill file. drain replays the
// column in order (spilled prefix, then the in-memory tail) and may be
// called more than once.
type spillColumn struct {
	dir   string
	buf   []byte
	spill *extsort.SpillFile
	err   error
}

// colSpillThreshold is the per-column in-memory cap before overflow. It is a
// variable only so tests can shrink it to force the spill path.
var colSpillThreshold = 256 << 10

func newSpillColumn(dir string) *spillColumn {
	return &spillColumn{dir: dir}
}

func (c *spillColumn) append(p []byte) error {
	if c.err != nil {
		return c.err
	}
	c.buf = append(c.buf, p...)
	if len(c.buf) >= colSpillThreshold {
		if c.spill == nil {
			c.spill, c.err = extsort.NewSpillFile(c.dir, "snapshot-col-*.spill")
			if c.err != nil {
				return c.err
			}
		}
		if _, err := c.spill.Write(c.buf); err != nil {
			c.err = err
			return err
		}
		c.buf = c.buf[:0]
	}
	return nil
}

func (c *spillColumn) len() int64 {
	n := int64(len(c.buf))
	if c.spill != nil {
		n += c.spill.Len()
	}
	return n
}

func (c *spillColumn) spilledBytes() int64 {
	if c == nil || c.spill == nil {
		return 0
	}
	return c.spill.Len()
}

func (c *spillColumn) drain(w io.Writer) error {
	if c.err != nil {
		return c.err
	}
	if c.spill != nil {
		if err := c.spill.VerifyCopy(w); err != nil {
			return err
		}
	}
	if len(c.buf) > 0 {
		if _, err := w.Write(c.buf); err != nil {
			return err
		}
	}
	return nil
}

func (c *spillColumn) close() {
	if c == nil {
		return
	}
	if c.spill != nil {
		c.spill.Remove()
		c.spill = nil
	}
	c.buf = nil
}

// StreamCorpus encodes an already-resident corpus through a StreamWriter:
// certificates interned in corpus ID order, then every scan's observations in
// order — the same event stream the in-memory writers serialise, so the
// output is byte-identical to Write (or WriteV3, when cfg.V3 is set) while
// the encoder's bulky state stays on disk under cfg.MemBudget.
func StreamCorpus(w io.Writer, c *scanstore.Corpus, opt Options, cfg StreamWriterConfig) error {
	sw, err := NewStreamWriter(opt, cfg)
	if err != nil {
		return err
	}
	defer sw.Close()
	for i := 0; i < c.NumCerts(); i++ {
		cert := c.Cert(scanstore.CertID(i)).Cert
		if _, _, err := sw.Intern(cert.Raw, cert.Fingerprint(), cert.PublicKeyFingerprint()); err != nil {
			return err
		}
	}
	for s := 0; s < c.NumScans(); s++ {
		scan := c.Scan(scanstore.ScanID(s))
		if err := sw.BeginScan(scan.Operator, scan.Time); err != nil {
			return err
		}
		for _, o := range scan.Obs {
			if err := sw.AddObs(o.Cert, o.IP); err != nil {
				return err
			}
		}
	}
	return sw.Finish(w)
}
