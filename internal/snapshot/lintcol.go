package snapshot

// Lint findings column: a checksummed sidecar that persists one corpus lint
// run next to a snapshot, so analyze and certquery can answer "what did the
// registry find for this certificate?" without re-linting.
//
// The column is a separate file rather than a sixth v3 section because the
// findings are derived data with their own lifecycle: relinting after a
// registry change must not rewrite (or invalidate the checksums of) the
// measurement snapshot itself. The encoding discipline is exactly the v3
// index sections': fixed-width sorted keys, tiled postings, explicit caps
// checked before any allocation, SHA-256 over header and body, and an exact
// file-size requirement — a hostile column can be rejected, never trusted.
//
// Layout (integers little-endian):
//
//	magic      [8]byte  "SPKILC01"
//	certCount  uint64
//	findCount  uint64
//	lintCount  uint32
//	reserved   uint32   must be zero
//	lintTabLen uint64   lint-table blob byte length
//	detailLen  uint64   detail blob byte length
//	headerSum  [32]byte SHA-256 of the 48 header bytes above
//	lint table lintCount varint records: idLen uvarint, id bytes,
//	           version uvarint (>= 1), severity byte (< 4) — IDs strictly
//	           ascending, exactly lintTabLen bytes
//	keys       certCount × 16-byte groups after a 32-byte fingerprint:
//	           fp[32], postOff u32, postCount u32 — fingerprints strictly
//	           ascending; groups tile the posting array in order (postOff is
//	           an element index), zero-count groups allowed
//	postings   findCount × 16-byte findings: lintIdx u32, severity u32,
//	           detailOff u32, detailLen u32 — lintIdx strictly ascending
//	           within each group and < lintCount; severity must match the
//	           lint table; details tile the detail blob in posting order
//	details    detailLen bytes of finding detail strings
//	bodySum    [32]byte SHA-256 of lint table ‖ keys ‖ postings ‖ details
//
// The file ends exactly after bodySum; trailing bytes are an error.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"

	"securepki/internal/certlint"
	"securepki/internal/x509lite"
)

// MagicLintColumn opens every lint findings column.
const MagicLintColumn = "SPKILC01"

// lintColHeaderLen is magic through detailLen, the bytes headerSum covers.
const lintColHeaderLen = 8 + 2*8 + 2*4 + 2*8

// lintColKeyEntry and lintColPostEntry are the fixed widths of one key-array
// and one posting-array element.
const (
	lintColKeyEntry  = 40
	lintColPostEntry = 16
)

// Caps a hostile header must stay under before anything is allocated.
const (
	maxLintColLints    = 4096
	maxLintColTable    = 1 << 20
	maxLintColDetail   = 1 << 16
	maxLintColDetails  = maxIndexBytes
	maxLintColFindings = maxIndexBytes / lintColPostEntry
)

// LintColumn is a validated, loaded findings column. Lookups binary-search
// the key array; nothing is re-derived from certificates.
type LintColumn struct {
	// Lints is the persisted registry identity, in the column's index order
	// (ascending ID).
	Lints []certlint.LinterInfo

	keys    []byte
	posts   []byte
	details []byte
}

// WriteLintColumn encodes one corpus run. Results must be sorted by
// fingerprint with no duplicates (certlint.RunCorpus's contract) and every
// finding must reference a linter in infos; infos must be ID-sorted with
// unique IDs (Registry.Infos's contract).
func WriteLintColumn(w io.Writer, results []certlint.CertFindings, infos []certlint.LinterInfo) error {
	if len(infos) > maxLintColLints {
		return fmt.Errorf("snapshot: lint column: %d linters, cap %d", len(infos), maxLintColLints)
	}
	idx := make(map[string]int, len(infos))
	var lintTab bytes.Buffer
	var varint [binary.MaxVarintLen64]byte
	for i, info := range infos {
		if i > 0 && infos[i-1].ID >= info.ID {
			return fmt.Errorf("snapshot: lint column: linter infos not ID-sorted at %q", info.ID)
		}
		if info.Version < 1 {
			return fmt.Errorf("snapshot: lint column: linter %s version %d", info.ID, info.Version)
		}
		if info.Severity < 0 || int(info.Severity) >= certlint.NumSeverities {
			return fmt.Errorf("snapshot: lint column: linter %s severity %d", info.ID, info.Severity)
		}
		idx[info.ID] = i
		lintTab.Write(varint[:binary.PutUvarint(varint[:], uint64(len(info.ID)))])
		lintTab.WriteString(info.ID)
		lintTab.Write(varint[:binary.PutUvarint(varint[:], uint64(info.Version))])
		lintTab.WriteByte(byte(info.Severity))
	}
	if lintTab.Len() > maxLintColTable {
		return fmt.Errorf("snapshot: lint column: lint table %d bytes, cap %d", lintTab.Len(), maxLintColTable)
	}

	var keys, posts, details bytes.Buffer
	var findCount uint64
	for i, cf := range results {
		if i > 0 && bytes.Compare(results[i-1].Fingerprint[:], cf.Fingerprint[:]) >= 0 {
			return fmt.Errorf("snapshot: lint column: results not fingerprint-sorted at %d", i)
		}
		keys.Write(cf.Fingerprint[:])
		var entry [8]byte
		binary.LittleEndian.PutUint32(entry[0:], uint32(findCount))
		binary.LittleEndian.PutUint32(entry[4:], uint32(len(cf.Findings)))
		keys.Write(entry[:])
		prevIdx := -1
		for _, f := range cf.Findings {
			li, ok := idx[f.LintID]
			if !ok {
				return fmt.Errorf("snapshot: lint column: finding references unregistered lint %q", f.LintID)
			}
			if li <= prevIdx {
				return fmt.Errorf("snapshot: lint column: findings for %s not ID-sorted", cf.Fingerprint)
			}
			prevIdx = li
			if len(f.Detail) > maxLintColDetail {
				return fmt.Errorf("snapshot: lint column: detail %d bytes, cap %d", len(f.Detail), maxLintColDetail)
			}
			var post [lintColPostEntry]byte
			binary.LittleEndian.PutUint32(post[0:], uint32(li))
			binary.LittleEndian.PutUint32(post[4:], uint32(f.Severity))
			binary.LittleEndian.PutUint32(post[8:], uint32(details.Len()))
			binary.LittleEndian.PutUint32(post[12:], uint32(len(f.Detail)))
			posts.Write(post[:])
			details.WriteString(f.Detail)
			findCount++
		}
	}
	if details.Len() > maxLintColDetails {
		return fmt.Errorf("snapshot: lint column: detail blob %d bytes, cap %d", details.Len(), maxLintColDetails)
	}

	var header [lintColHeaderLen]byte
	copy(header[:8], MagicLintColumn)
	binary.LittleEndian.PutUint64(header[8:], uint64(len(results)))
	binary.LittleEndian.PutUint64(header[16:], findCount)
	binary.LittleEndian.PutUint32(header[24:], uint32(len(infos)))
	binary.LittleEndian.PutUint64(header[32:], uint64(lintTab.Len()))
	binary.LittleEndian.PutUint64(header[40:], uint64(details.Len()))
	headerSum := sha256.Sum256(header[:])

	body := sha256.New()
	for _, blob := range [][]byte{lintTab.Bytes(), keys.Bytes(), posts.Bytes(), details.Bytes()} {
		body.Write(blob)
	}
	var bodySum [32]byte
	body.Sum(bodySum[:0])

	for _, blob := range [][]byte{header[:], headerSum[:], lintTab.Bytes(), keys.Bytes(), posts.Bytes(), details.Bytes(), bodySum[:]} {
		if _, err := w.Write(blob); err != nil {
			return fmt.Errorf("snapshot: lint column write: %w", err)
		}
	}
	return nil
}

// WriteLintColumnFile writes the column to path atomically enough for the
// pipeline (write then close; no rename dance — callers own the directory).
func WriteLintColumnFile(path string, results []certlint.CertFindings, infos []certlint.LinterInfo) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteLintColumn(f, results, infos); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadLintColumn parses and fully validates a findings column. Every
// structural claim the file makes — counts, caps, sort orders, tiling,
// checksums, exact length — is checked before the column is usable.
func ReadLintColumn(data []byte) (*LintColumn, error) {
	if len(data) < lintColHeaderLen+32 {
		return nil, fmt.Errorf("snapshot: lint column: %d bytes, shorter than header", len(data))
	}
	if string(data[:8]) != MagicLintColumn {
		return nil, fmt.Errorf("snapshot: lint column: bad magic %q", data[:8])
	}
	certCount := binary.LittleEndian.Uint64(data[8:])
	findCount := binary.LittleEndian.Uint64(data[16:])
	lintCount := binary.LittleEndian.Uint32(data[24:])
	if reserved := binary.LittleEndian.Uint32(data[28:]); reserved != 0 {
		return nil, fmt.Errorf("snapshot: lint column: reserved field %d", reserved)
	}
	lintTabLen := binary.LittleEndian.Uint64(data[32:])
	detailLen := binary.LittleEndian.Uint64(data[40:])

	headerSum := sha256.Sum256(data[:lintColHeaderLen])
	if !bytes.Equal(headerSum[:], data[lintColHeaderLen:lintColHeaderLen+32]) {
		return nil, fmt.Errorf("snapshot: lint column: header checksum mismatch")
	}

	if certCount > maxCerts {
		return nil, fmt.Errorf("snapshot: lint column: %d certs, cap %d", certCount, uint64(maxCerts))
	}
	if lintCount > maxLintColLints {
		return nil, fmt.Errorf("snapshot: lint column: %d linters, cap %d", lintCount, maxLintColLints)
	}
	if lintTabLen > maxLintColTable {
		return nil, fmt.Errorf("snapshot: lint column: lint table %d bytes, cap %d", lintTabLen, maxLintColTable)
	}
	if detailLen > maxLintColDetails {
		return nil, fmt.Errorf("snapshot: lint column: detail blob %d bytes, cap %d", detailLen, uint64(maxLintColDetails))
	}
	if findCount > maxLintColFindings {
		return nil, fmt.Errorf("snapshot: lint column: %d findings, cap %d", findCount, uint64(maxLintColFindings))
	}
	if lintCount > 0 && findCount > certCount*uint64(lintCount) {
		return nil, fmt.Errorf("snapshot: lint column: %d findings for %d certs × %d linters", findCount, certCount, lintCount)
	}
	if lintCount == 0 && findCount > 0 {
		return nil, fmt.Errorf("snapshot: lint column: %d findings but no linters", findCount)
	}
	if certCount > maxIndexBytes/lintColKeyEntry {
		return nil, fmt.Errorf("snapshot: lint column: key array over cap")
	}

	keysLen := int64(certCount) * lintColKeyEntry
	postsLen := int64(findCount) * lintColPostEntry
	want := int64(lintColHeaderLen) + 32 + int64(lintTabLen) + keysLen + postsLen + int64(detailLen) + 32
	if int64(len(data)) != want {
		return nil, fmt.Errorf("snapshot: lint column: file is %d bytes, layout needs %d", len(data), want)
	}

	off := int64(lintColHeaderLen) + 32
	lintTab := data[off : off+int64(lintTabLen)]
	off += int64(lintTabLen)
	keys := data[off : off+keysLen]
	off += keysLen
	posts := data[off : off+postsLen]
	off += postsLen
	details := data[off : off+int64(detailLen)]
	off += int64(detailLen)

	body := sha256.New()
	body.Write(lintTab)
	body.Write(keys)
	body.Write(posts)
	body.Write(details)
	var bodySum [32]byte
	body.Sum(bodySum[:0])
	if !bytes.Equal(bodySum[:], data[off:off+32]) {
		return nil, fmt.Errorf("snapshot: lint column: body checksum mismatch")
	}

	lints, err := parseLintTable(lintTab, lintCount)
	if err != nil {
		return nil, err
	}

	// Keys: strictly ascending fingerprints, groups tiling the postings.
	var nextOff uint64
	for k := uint64(0); k < certCount; k++ {
		e := keys[k*lintColKeyEntry:]
		if k > 0 && bytes.Compare(keys[(k-1)*lintColKeyEntry:][:32], e[:32]) >= 0 {
			return nil, fmt.Errorf("snapshot: lint column: key array not sorted at %d", k)
		}
		postOff := uint64(binary.LittleEndian.Uint32(e[32:]))
		postCount := uint64(binary.LittleEndian.Uint32(e[36:]))
		if postOff != nextOff {
			return nil, fmt.Errorf("snapshot: lint column: key %d postings at %d, want %d", k, postOff, nextOff)
		}
		nextOff += postCount
		if nextOff > findCount {
			return nil, fmt.Errorf("snapshot: lint column: key %d postings overrun", k)
		}
		prevIdx := int64(-1)
		for p := postOff; p < nextOff; p++ {
			pe := posts[p*lintColPostEntry:]
			lintIdx := binary.LittleEndian.Uint32(pe[0:])
			if lintIdx >= lintCount {
				return nil, fmt.Errorf("snapshot: lint column: posting %d references lint %d of %d", p, lintIdx, lintCount)
			}
			if int64(lintIdx) <= prevIdx {
				return nil, fmt.Errorf("snapshot: lint column: postings for key %d not lint-sorted", k)
			}
			prevIdx = int64(lintIdx)
			if sev := binary.LittleEndian.Uint32(pe[4:]); sev != uint32(lints[lintIdx].Severity) {
				return nil, fmt.Errorf("snapshot: lint column: posting %d severity %d contradicts lint table", p, sev)
			}
		}
	}
	if nextOff != findCount {
		return nil, fmt.Errorf("snapshot: lint column: keys cover %d postings of %d", nextOff, findCount)
	}

	// Postings: details tile the blob in order.
	var nextDetail uint64
	for p := uint64(0); p < findCount; p++ {
		pe := posts[p*lintColPostEntry:]
		dOff := uint64(binary.LittleEndian.Uint32(pe[8:]))
		dLen := uint64(binary.LittleEndian.Uint32(pe[12:]))
		if dLen > maxLintColDetail {
			return nil, fmt.Errorf("snapshot: lint column: posting %d detail %d bytes, cap %d", p, dLen, maxLintColDetail)
		}
		if dOff != nextDetail {
			return nil, fmt.Errorf("snapshot: lint column: posting %d detail at %d, want %d", p, dOff, nextDetail)
		}
		nextDetail += dLen
		if nextDetail > detailLen {
			return nil, fmt.Errorf("snapshot: lint column: posting %d detail overruns blob", p)
		}
	}
	if nextDetail != detailLen {
		return nil, fmt.Errorf("snapshot: lint column: details cover %d bytes of %d", nextDetail, detailLen)
	}

	return &LintColumn{Lints: lints, keys: keys, posts: posts, details: details}, nil
}

// parseLintTable decodes and validates the lint identity records.
func parseLintTable(tab []byte, count uint32) ([]certlint.LinterInfo, error) {
	lints := make([]certlint.LinterInfo, 0, count)
	rest := tab
	for i := uint32(0); i < count; i++ {
		idLen, n := binary.Uvarint(rest)
		if n <= 0 || idLen == 0 || idLen > 256 || uint64(len(rest)-n) < idLen {
			return nil, fmt.Errorf("snapshot: lint column: lint table entry %d truncated", i)
		}
		rest = rest[n:]
		id := string(rest[:idLen])
		rest = rest[idLen:]
		version, n := binary.Uvarint(rest)
		if n <= 0 || version == 0 || version > 1<<20 {
			return nil, fmt.Errorf("snapshot: lint column: lint %s bad version", id)
		}
		rest = rest[n:]
		if len(rest) < 1 {
			return nil, fmt.Errorf("snapshot: lint column: lint %s missing severity", id)
		}
		sev := rest[0]
		rest = rest[1:]
		if int(sev) >= certlint.NumSeverities {
			return nil, fmt.Errorf("snapshot: lint column: lint %s severity %d", id, sev)
		}
		if i > 0 && lints[i-1].ID >= id {
			return nil, fmt.Errorf("snapshot: lint column: lint table not ID-sorted at %q", id)
		}
		lints = append(lints, certlint.LinterInfo{ID: id, Version: int(version), Severity: certlint.Severity(sev)})
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("snapshot: lint column: %d trailing lint-table bytes", len(rest))
	}
	return lints, nil
}

// ReadLintColumnFile loads and validates a column from disk.
func ReadLintColumnFile(path string) (*LintColumn, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ReadLintColumn(data)
}

// CertCount returns how many certificates the column covers.
func (lc *LintColumn) CertCount() int { return len(lc.keys) / lintColKeyEntry }

// FindingCount returns how many findings the column holds.
func (lc *LintColumn) FindingCount() int { return len(lc.posts) / lintColPostEntry }

// Fingerprint returns the k-th certificate fingerprint in column order.
func (lc *LintColumn) Fingerprint(k int) x509lite.Fingerprint {
	var fp x509lite.Fingerprint
	copy(fp[:], lc.keys[k*lintColKeyEntry:])
	return fp
}

// FindingsAt returns the k-th certificate's findings in column order.
func (lc *LintColumn) FindingsAt(k int) []certlint.Finding {
	e := lc.keys[k*lintColKeyEntry:]
	postOff := int(binary.LittleEndian.Uint32(e[32:]))
	postCount := int(binary.LittleEndian.Uint32(e[36:]))
	out := make([]certlint.Finding, 0, postCount)
	for p := postOff; p < postOff+postCount; p++ {
		pe := lc.posts[p*lintColPostEntry:]
		info := lc.Lints[binary.LittleEndian.Uint32(pe[0:])]
		dOff := binary.LittleEndian.Uint32(pe[8:])
		dLen := binary.LittleEndian.Uint32(pe[12:])
		out = append(out, certlint.Finding{
			LintID:   info.ID,
			Version:  info.Version,
			Severity: certlint.Severity(binary.LittleEndian.Uint32(pe[4:])),
			Detail:   string(lc.details[dOff : dOff+dLen]),
		})
	}
	return out
}

// Findings binary-searches the column for one certificate's findings. The
// second return distinguishes "not in the corpus" from "linted clean".
func (lc *LintColumn) Findings(fp x509lite.Fingerprint) ([]certlint.Finding, bool) {
	n := lc.CertCount()
	k := sort.Search(n, func(i int) bool {
		return bytes.Compare(lc.keys[i*lintColKeyEntry:][:32], fp[:]) >= 0
	})
	if k >= n || !bytes.Equal(lc.keys[k*lintColKeyEntry:][:32], fp[:]) {
		return nil, false
	}
	return lc.FindingsAt(k), true
}
