package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"securepki/internal/certlint"
	"securepki/internal/x509lite"
)

// testLintInfos is a small ID-sorted registry identity for column tests.
func testLintInfos() []certlint.LinterInfo {
	return []certlint.LinterInfo{
		{ID: "a_lint", Version: 1, Severity: certlint.Info},
		{ID: "b_lint", Version: 2, Severity: certlint.Warn},
		{ID: "c_lint", Version: 1, Severity: certlint.Error},
		{ID: "d_lint", Version: 3, Severity: certlint.Fatal},
	}
}

// testLintResults builds n fingerprint-sorted cert findings with a varied
// findings schedule, including clean certs and empty details.
func testLintResults(n int) []certlint.CertFindings {
	infos := testLintInfos()
	results := make([]certlint.CertFindings, 0, n)
	for i := 0; i < n; i++ {
		fp := x509lite.FingerprintBytes([]byte(fmt.Sprintf("lintcol-cert-%d", i)))
		var fs []certlint.Finding
		for j, info := range infos {
			switch {
			case i%(j+2) != 0:
				continue
			case j == 1:
				fs = append(fs, certlint.Finding{LintID: info.ID, Version: info.Version, Severity: info.Severity})
			default:
				fs = append(fs, certlint.Finding{
					LintID: info.ID, Version: info.Version, Severity: info.Severity,
					Detail: fmt.Sprintf("detail %d/%d", i, j),
				})
			}
		}
		results = append(results, certlint.CertFindings{Fingerprint: fp, Findings: fs})
	}
	sortCertFindings(results)
	return results
}

func sortCertFindings(results []certlint.CertFindings) {
	for i := 1; i < len(results); i++ {
		for j := i; j > 0 && bytes.Compare(results[j].Fingerprint[:], results[j-1].Fingerprint[:]) < 0; j-- {
			results[j], results[j-1] = results[j-1], results[j]
		}
	}
}

func encodeLintColumn(tb testing.TB, results []certlint.CertFindings, infos []certlint.LinterInfo) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := WriteLintColumn(&buf, results, infos); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func TestLintColumnRoundTrip(t *testing.T) {
	results := testLintResults(37)
	data := encodeLintColumn(t, results, testLintInfos())
	lc, err := ReadLintColumn(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lc.Lints, testLintInfos()) {
		t.Errorf("lint table drifted: %+v", lc.Lints)
	}
	if lc.CertCount() != len(results) {
		t.Fatalf("CertCount = %d, want %d", lc.CertCount(), len(results))
	}
	var wantFindings int
	for k, want := range results {
		wantFindings += len(want.Findings)
		if lc.Fingerprint(k) != want.Fingerprint {
			t.Fatalf("cert %d fingerprint drifted", k)
		}
		got := lc.FindingsAt(k)
		if len(got) == 0 && len(want.Findings) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want.Findings) {
			t.Errorf("cert %d findings drifted:\n got %+v\nwant %+v", k, got, want.Findings)
		}
	}
	if lc.FindingCount() != wantFindings {
		t.Errorf("FindingCount = %d, want %d", lc.FindingCount(), wantFindings)
	}

	// Point lookup: a present fingerprint answers, a missing one says so.
	fs, ok := lc.Findings(results[5].Fingerprint)
	if !ok || !reflect.DeepEqual(fs, results[5].Findings) {
		t.Errorf("Findings(present) = %+v, %v", fs, ok)
	}
	if _, ok := lc.Findings(x509lite.FingerprintBytes([]byte("never linted"))); ok {
		t.Error("Findings(absent) claimed a hit")
	}
}

func TestLintColumnFileRoundTrip(t *testing.T) {
	results := testLintResults(9)
	path := filepath.Join(t.TempDir(), "corpus.lint")
	if err := WriteLintColumnFile(path, results, testLintInfos()); err != nil {
		t.Fatal(err)
	}
	lc, err := ReadLintColumnFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lc.CertCount() != len(results) {
		t.Errorf("CertCount = %d, want %d", lc.CertCount(), len(results))
	}
}

func TestLintColumnEmpty(t *testing.T) {
	data := encodeLintColumn(t, nil, testLintInfos())
	lc, err := ReadLintColumn(data)
	if err != nil {
		t.Fatal(err)
	}
	if lc.CertCount() != 0 || lc.FindingCount() != 0 {
		t.Errorf("empty column reports %d certs, %d findings", lc.CertCount(), lc.FindingCount())
	}
	// No linters at all is also legal as long as no findings reference one.
	data = encodeLintColumn(t, []certlint.CertFindings{
		{Fingerprint: x509lite.FingerprintBytes([]byte("clean"))},
	}, nil)
	lc, err = ReadLintColumn(data)
	if err != nil {
		t.Fatal(err)
	}
	if lc.CertCount() != 1 || len(lc.FindingsAt(0)) != 0 {
		t.Error("linter-less column drifted")
	}
}

func TestWriteLintColumnRejects(t *testing.T) {
	infos := testLintInfos()
	fpA := x509lite.FingerprintBytes([]byte("a"))
	fpB := x509lite.FingerprintBytes([]byte("b"))
	lo, hi := fpA, fpB
	if bytes.Compare(lo[:], hi[:]) > 0 {
		lo, hi = hi, lo
	}
	find := func(id string) certlint.Finding {
		for _, info := range infos {
			if info.ID == id {
				return certlint.Finding{LintID: id, Version: info.Version, Severity: info.Severity}
			}
		}
		panic("unknown id " + id)
	}

	cases := []struct {
		name    string
		results []certlint.CertFindings
		infos   []certlint.LinterInfo
		wantSub string
	}{
		{
			"unsorted results",
			[]certlint.CertFindings{{Fingerprint: hi}, {Fingerprint: lo}},
			infos, "not fingerprint-sorted",
		},
		{
			"duplicate fingerprint",
			[]certlint.CertFindings{{Fingerprint: lo}, {Fingerprint: lo}},
			infos, "not fingerprint-sorted",
		},
		{
			"unknown lint ID",
			[]certlint.CertFindings{{Fingerprint: lo, Findings: []certlint.Finding{{LintID: "ghost", Version: 1}}}},
			infos, "unregistered lint",
		},
		{
			"findings out of order",
			[]certlint.CertFindings{{Fingerprint: lo, Findings: []certlint.Finding{find("b_lint"), find("a_lint")}}},
			infos, "not ID-sorted",
		},
		{
			"unsorted infos",
			nil,
			[]certlint.LinterInfo{{ID: "z", Version: 1}, {ID: "a", Version: 1}},
			"not ID-sorted",
		},
		{
			"zero info version",
			nil,
			[]certlint.LinterInfo{{ID: "a", Version: 0}},
			"version",
		},
		{
			"info severity out of range",
			nil,
			[]certlint.LinterInfo{{ID: "a", Version: 1, Severity: certlint.Severity(9)}},
			"severity",
		},
		{
			"oversized detail",
			[]certlint.CertFindings{{Fingerprint: lo, Findings: []certlint.Finding{{
				LintID: "a_lint", Version: 1, Severity: certlint.Info,
				Detail: strings.Repeat("x", maxLintColDetail+1),
			}}}},
			infos, "cap",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := WriteLintColumn(&bytes.Buffer{}, tc.results, tc.infos)
			if err == nil {
				t.Fatal("bad input accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// lintColOffsets decodes the section offsets of a valid column.
type lintColOffsets struct {
	lintTab, keys, posts, details, bodySum int64
}

func lintColLayout(data []byte) lintColOffsets {
	certCount := int64(binary.LittleEndian.Uint64(data[8:]))
	findCount := int64(binary.LittleEndian.Uint64(data[16:]))
	lintTabLen := int64(binary.LittleEndian.Uint64(data[32:]))
	detailLen := int64(binary.LittleEndian.Uint64(data[40:]))
	var o lintColOffsets
	o.lintTab = lintColHeaderLen + 32
	o.keys = o.lintTab + lintTabLen
	o.posts = o.keys + certCount*lintColKeyEntry
	o.details = o.posts + findCount*lintColPostEntry
	o.bodySum = o.details + detailLen
	return o
}

// patchLintHeader mutates the 48 header bytes and recomputes the header
// checksum, so corruption reaches the field validation behind it.
func patchLintHeader(data []byte, modify func(header []byte)) []byte {
	out := append([]byte(nil), data...)
	modify(out[:lintColHeaderLen])
	sum := sha256.Sum256(out[:lintColHeaderLen])
	copy(out[lintColHeaderLen:], sum[:])
	return out
}

// patchLintBody mutates the body blobs and recomputes the body checksum, so
// only structural validation can reject the result.
func patchLintBody(data []byte, modify func(lintTab, keys, posts, details []byte)) []byte {
	out := append([]byte(nil), data...)
	o := lintColLayout(out)
	modify(out[o.lintTab:o.keys], out[o.keys:o.posts], out[o.posts:o.details], out[o.details:o.bodySum])
	sum := sha256.New()
	sum.Write(out[o.lintTab:o.bodySum])
	copy(out[o.bodySum:], sum.Sum(nil))
	return out
}

// Every corrupted findings column must produce an explicit error — no panic,
// no out-of-bounds read, never silently wrong findings. Same discipline as
// TestReadCorruptV3 for the snapshot proper.
func TestReadCorruptLintColumn(t *testing.T) {
	valid := encodeLintColumn(t, testLintResults(23), testLintInfos())
	o := lintColLayout(valid)

	cases := []struct {
		name    string
		input   []byte
		wantSub string
	}{
		{"empty", nil, "shorter than header"},
		{"truncated header", valid[:40], "shorter than header"},
		{"bad magic", append([]byte("NOTLINT0"), valid[8:]...), "bad magic"},
		{"truncated body", valid[:len(valid)-40], "layout needs"},
		{"trailing garbage", append(append([]byte(nil), valid...), 0x00), "layout needs"},
		{"flipped header byte", flipByte(valid, 9), "header checksum"},
		{"flipped body byte", flipByte(valid, int(o.keys)+2), "body checksum"},
		{"flipped detail byte", flipByte(valid, int(o.details)), "body checksum"},
		{
			"reserved field set",
			patchLintHeader(valid, func(h []byte) { binary.LittleEndian.PutUint32(h[28:], 7) }),
			"reserved",
		},
		{
			"absurd linter count",
			patchLintHeader(valid, func(h []byte) { binary.LittleEndian.PutUint32(h[24:], maxLintColLints+1) }),
			"cap",
		},
		{
			"absurd lint table length",
			patchLintHeader(valid, func(h []byte) { binary.LittleEndian.PutUint64(h[32:], maxLintColTable+1) }),
			"cap",
		},
		{
			"absurd detail length",
			patchLintHeader(valid, func(h []byte) { binary.LittleEndian.PutUint64(h[40:], maxLintColDetails+1) }),
			"cap",
		},
		{
			"findings exceed certs times linters",
			patchLintHeader(valid, func(h []byte) {
				binary.LittleEndian.PutUint64(h[16:], binary.LittleEndian.Uint64(h[8:])*4+1)
			}),
			"findings",
		},
		{
			"unsorted key fingerprints",
			patchLintBody(valid, func(_, keys, _, _ []byte) {
				tmp := make([]byte, lintColKeyEntry)
				copy(tmp, keys[:lintColKeyEntry])
				copy(keys[:lintColKeyEntry], keys[lintColKeyEntry:2*lintColKeyEntry])
				copy(keys[lintColKeyEntry:2*lintColKeyEntry], tmp)
			}),
			"", // either non-tiling postings or unsorted keys, both explicit
		},
		{
			"overlapping posting groups",
			patchLintBody(valid, func(_, keys, _, _ []byte) {
				// Find a key with postings beyond offset 0 and rewind it.
				for k := 0; k*lintColKeyEntry < len(keys); k++ {
					e := keys[k*lintColKeyEntry:]
					if binary.LittleEndian.Uint32(e[32:]) != 0 {
						binary.LittleEndian.PutUint32(e[32:], 0)
						return
					}
				}
			}),
			"postings",
		},
		{
			"posting references missing lint",
			patchLintBody(valid, func(_, _, posts, _ []byte) {
				binary.LittleEndian.PutUint32(posts[0:], 99)
			}),
			"references lint",
		},
		{
			"posting severity contradicts lint table",
			patchLintBody(valid, func(_, _, posts, _ []byte) {
				sev := binary.LittleEndian.Uint32(posts[4:])
				binary.LittleEndian.PutUint32(posts[4:], (sev+1)%4)
			}),
			"contradicts",
		},
		{
			"detail blob overrun",
			patchLintBody(valid, func(_, _, posts, _ []byte) {
				dLen := binary.LittleEndian.Uint32(posts[12:])
				binary.LittleEndian.PutUint32(posts[12:], dLen+8)
			}),
			"detail",
		},
		{
			"unsorted lint table",
			patchLintBody(valid, func(lintTab, _, _, _ []byte) {
				// "a_lint" → "z_lint": breaks ascending IDs.
				lintTab[1] = 'z'
			}),
			"not ID-sorted",
		},
		{
			"lint table bad severity",
			patchLintBody(valid, func(lintTab, _, _, _ []byte) {
				// Entry 0: uvarint len (1 byte, =6), id (6), version uvarint
				// (1 byte), severity byte.
				lintTab[8] = 9
			}),
			"severity",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadLintColumn(tc.input)
			if err == nil {
				t.Fatal("corrupt column accepted")
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestLintColumnFromRunCorpus closes the loop against the real registry: a
// linted corpus persists and reloads with findings byte-equal to the live
// run, at several worker counts.
func TestLintColumnFromRunCorpus(t *testing.T) {
	// Hand-built certificates exercise enough linters; reuse the synthetic
	// results as the baseline and the registry identity as the table.
	infos := certlint.Default().Infos()
	results := []certlint.CertFindings{}
	data := encodeLintColumn(t, results, infos)
	lc, err := ReadLintColumn(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(lc.Lints) != certlint.Default().Len() {
		t.Fatalf("column persists %d linters, registry has %d", len(lc.Lints), certlint.Default().Len())
	}
	if !reflect.DeepEqual(lc.Lints, infos) {
		t.Error("registry identity drifted through the column")
	}
}
