package snapshot

import (
	"bytes"
	"testing"

	"securepki/internal/certlint"
	"securepki/internal/devicesim"
	"securepki/internal/netsim"
	"securepki/internal/scanstore"
)

// mutatedCorpus builds a corpus whose certificates come from a devicesim
// world with frankencert mutation turned most of the way up, so the fuzz
// seeds cover every population-class mutation (absurd versions, negative and
// oversized serials, inverted validity, donor swaps, duplicate extensions,
// pathological name lengths, ...) flowing through the container codec.
func mutatedCorpus(tb testing.TB) *scanstore.Corpus {
	tb.Helper()
	cfg := devicesim.DefaultConfig()
	cfg.Seed = 11
	cfg.NumDevices = 60
	cfg.NumSites = 4
	cfg.MutateFrac = 0.6
	world, err := devicesim.BuildWorld(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	c := scanstore.NewCorpus()
	obs := make([]scanstore.Observation, 0, len(world.Devices))
	for i, dev := range world.Devices {
		id := c.Intern(dev.CurrentCert())
		obs = append(obs, scanstore.Observation{Cert: id, IP: netsim.IP(0x0a000000 + uint32(i))})
	}
	if _, err := c.AddScan(scanstore.UMich, cfg.Start, obs); err != nil {
		tb.Fatal(err)
	}
	return c
}

// FuzzReadSnapshot throws arbitrary bytes at the loader. The invariants: Read
// never panics, never allocates unboundedly, and anything it accepts must
// survive a write/read round trip unchanged. The seed corpus covers both
// formats plus the interesting failure shapes; CI replays the seeds with
// -fuzztime=0 so the harness itself stays exercised.
func FuzzReadSnapshot(f *testing.F) {
	c := testCorpus(f, 12, 3, 20)
	v2 := encodeV2(f, c, Options{CertsPerShard: 5, ScansPerShard: 2})
	var v1buf bytes.Buffer
	if err := c.Write(&v1buf); err != nil {
		f.Fatal(err)
	}
	v1 := v1buf.Bytes()
	empty := encodeV2(f, scanstore.NewCorpus(), Options{})
	v3 := encodeV3(f, c, Options{CertsPerShard: 5, ScansPerShard: 2, ASOf: testASOf})
	emptyV3 := encodeV3(f, scanstore.NewCorpus(), Options{})

	f.Add(v2)
	f.Add(v1)
	f.Add(empty)
	f.Add(v2[:len(v2)/2])
	f.Add(v1[:len(v1)/2])
	f.Add(flipByte(v2, len(v2)-5))
	f.Add(flipByte(v2, headerFixed+4))
	f.Add(forgeObsOverflow(f, v2))
	f.Add([]byte("SPKISNP2 but then nonsense"))
	f.Add([]byte{0x1f, 0x8b, 0x01, 0x02})
	f.Add([]byte{})
	f.Add(v3)
	f.Add(emptyV3)
	f.Add(v3[:len(v3)/2])
	f.Add(v3[:len(v3)-30]) // cuts into the index sections
	f.Add(flipByte(v3, len(v3)-5))
	f.Add(flipByte(v3, headerFixedV3+4))
	// A forged v3: structurally valid indexes that disagree with the
	// payloads (scan 0's operator flipped, checksums recomputed).
	f.Add(patchV3Section(f, v3, 4, func(keys, post []byte) {
		keys[0] ^= 1
	}))
	f.Add([]byte("SPKISNP3 but then nonsense"))
	// Mutated-population seeds: frankencert-style device certs through both
	// container formats, plus a truncation landing inside the mutant DER.
	mc := mutatedCorpus(f)
	mutV2 := encodeV2(f, mc, Options{CertsPerShard: 16, ScansPerShard: 1})
	mutV3 := encodeV3(f, mc, Options{CertsPerShard: 16, ScansPerShard: 1, ASOf: testASOf})
	f.Add(mutV2)
	f.Add(mutV3)
	f.Add(mutV2[:2*len(mutV2)/3])
	f.Add(flipByte(mutV3, len(mutV3)/2))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		c, err := Read(bytes.NewReader(data), Options{Workers: 2})
		if err != nil {
			return
		}
		// Accepted input must round-trip: re-encode and re-read.
		var buf bytes.Buffer
		if err := Write(&buf, c, Options{Workers: 2}); err != nil {
			t.Fatalf("accepted corpus fails to encode: %v", err)
		}
		again, err := Read(bytes.NewReader(buf.Bytes()), Options{Workers: 2})
		if err != nil {
			t.Fatalf("re-encoded corpus fails to load: %v", err)
		}
		corpusEqual(t, c, again)
	})
}

// FuzzReadLintColumn throws arbitrary bytes at the findings-column loader.
// Invariants: ReadLintColumn never panics and never reads out of bounds, and
// any column it accepts must re-encode to the identical bytes (the column's
// layout is fully canonical — tiled postings, tiled details, sorted keys —
// so a round trip has no freedom left).
func FuzzReadLintColumn(f *testing.F) {
	valid := encodeLintColumn(f, testLintResults(11), testLintInfos())
	empty := encodeLintColumn(f, nil, nil)
	f.Add(valid)
	f.Add(empty)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:lintColHeaderLen+32]) // header only
	f.Add(flipByte(valid, 9))
	f.Add(flipByte(valid, lintColHeaderLen+40))
	f.Add(flipByte(valid, len(valid)-5))
	f.Add(append(append([]byte(nil), valid...), 0xcc))
	f.Add(patchLintHeader(valid, func(h []byte) { h[24] = 0xff }))
	f.Add(patchLintBody(valid, func(_, _, posts, _ []byte) { posts[0] = 0xee }))
	f.Add([]byte(MagicLintColumn + " but then nonsense"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		lc, err := ReadLintColumn(data)
		if err != nil {
			return
		}
		results := make([]certlint.CertFindings, lc.CertCount())
		for k := range results {
			results[k] = certlint.CertFindings{Fingerprint: lc.Fingerprint(k), Findings: lc.FindingsAt(k)}
		}
		var buf bytes.Buffer
		if err := WriteLintColumn(&buf, results, lc.Lints); err != nil {
			t.Fatalf("accepted column fails to re-encode: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatal("accepted column does not round-trip byte-identically")
		}
	})
}
