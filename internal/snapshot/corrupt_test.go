package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"math"
	"strings"
	"testing"
)

// validV2 returns encoded bytes for a small multi-shard corpus.
func validV2(tb testing.TB) []byte {
	c := testCorpus(tb, 20, 4, 30)
	return encodeV2(tb, c, Options{CertsPerShard: 8, ScansPerShard: 2})
}

// patchHeader applies modify to the fixed header and shard table, then
// recomputes the header checksum so corruption tests reach the field checks
// behind it.
func patchHeader(tb testing.TB, snap []byte, modify func(fixed, table []byte)) []byte {
	tb.Helper()
	out := append([]byte(nil), snap...)
	fixed := out[:headerFixed]
	certShards := binary.LittleEndian.Uint32(fixed[32:])
	scanShards := binary.LittleEndian.Uint32(fixed[36:])
	tableLen := int(certShards+scanShards) * tableEntry
	table := out[headerFixed : headerFixed+tableLen]
	modify(fixed, table)
	sum := sha256.New()
	sum.Write(fixed)
	sum.Write(table)
	copy(out[headerFixed+tableLen:], sum.Sum(nil))
	return out
}

// Every corrupted input must produce an explicit error — no panic, no
// unbounded allocation, never a silently wrong corpus.
func TestReadCorrupt(t *testing.T) {
	snap := validV2(t)
	v1c := testCorpus(t, 6, 2, 8)
	var v1buf bytes.Buffer
	if err := v1c.Write(&v1buf); err != nil {
		t.Fatal(err)
	}
	v1 := v1buf.Bytes()

	cases := []struct {
		name    string
		input   []byte
		wantSub string // substring the error must mention, "" for any error
	}{
		{"empty", nil, "read magic"},
		{"one byte", []byte{0x53}, "read magic"},
		{"garbage", []byte("certainly not a snapshot of anything"), "bad magic"},
		{"bad magic", append([]byte("SPKISNP9"), snap[8:]...), "bad magic"},
		{"truncated fixed header", snap[:20], "truncated header"},
		{"truncated shard table", snap[:headerFixed+10], "truncated shard table"},
		// The corpus shards as 3 cert shards (8+8+4) and 2 scan shards (2+2),
		// so the header checksum starts at headerFixed + 5 table entries.
		{"truncated header checksum", snap[:headerFixed+5*tableEntry+3], "truncated header checksum"},
		{"truncated payload", snap[:len(snap)-15], "truncated"},
		{"trailing garbage", append(append([]byte(nil), snap...), 0xde, 0xad), "trailing bytes"},
		{"flipped table bit", flipByte(snap, headerFixed+8), "header checksum mismatch"},
		{"flipped payload bit", flipByte(snap, len(snap)-10), "checksum mismatch"},
		{
			"absurd cert count",
			patchHeader(t, snap, func(fixed, table []byte) {
				binary.LittleEndian.PutUint64(fixed[8:], 1<<40)
			}),
			"absurd counts",
		},
		{
			"absurd shard count",
			patchHeader(t, snap, func(fixed, table []byte) {
				binary.LittleEndian.PutUint32(fixed[32:], 1<<20)
			}),
			"exceed cap",
		},
		{
			"cert count without shards",
			patchHeader(t, snap, func(fixed, table []byte) {
				binary.LittleEndian.PutUint32(fixed[32:], 0)
			}),
			"shard/count mismatch",
		},
		{
			"absurd shard raw length",
			patchHeader(t, snap, func(fixed, table []byte) {
				binary.LittleEndian.PutUint64(table[16:], maxShardRaw+1)
			}),
			"raw bytes, cap",
		},
		{
			"gzip bomb ratio",
			patchHeader(t, snap, func(fixed, table []byte) {
				binary.LittleEndian.PutUint64(table[16:], maxShardRaw)
			}),
			"ratio cap",
		},
		{
			"non-contiguous shards",
			patchHeader(t, snap, func(fixed, table []byte) {
				binary.LittleEndian.PutUint64(table[tableEntry:], 9) // second shard's first
			}),
			"starts at",
		},
		{
			"shards overrun count",
			patchHeader(t, snap, func(fixed, table []byte) {
				binary.LittleEndian.PutUint64(table[8:], 9999) // first shard's count
			}),
			"overrun",
		},
		{
			"lying raw length",
			patchHeader(t, snap, func(fixed, table []byte) {
				n := binary.LittleEndian.Uint64(table[16:])
				binary.LittleEndian.PutUint64(table[16:], n-1)
			}),
			"longer than advertised",
		},
		{
			"observation count mismatch",
			patchHeader(t, snap, func(fixed, table []byte) {
				n := binary.LittleEndian.Uint64(fixed[24:])
				binary.LittleEndian.PutUint64(fixed[24:], n+1)
			}),
			"observations",
		},
		{"v1 truncated gzip", v1[:len(v1)-20], "v1"},
		{"v1 header only", v1[:5], "v1"},
		{"v1 garbage body", append(append([]byte(nil), v1[:10]...), []byte("not gob at all")...), "v1"},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, workers := range []int{1, 4} {
				_, err := Read(bytes.NewReader(tc.input), Options{Workers: workers})
				if err == nil {
					t.Fatalf("corrupt input accepted (workers=%d)", workers)
				}
				if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
					t.Fatalf("error %q does not mention %q", err, tc.wantSub)
				}
			}
		})
	}
}

// VerifyDigests must catch a digest column that disagrees with the DER — a
// forgery the shard checksum alone would bless if an attacker rewrote both.
func TestVerifyDigestsCatchesForgedColumn(t *testing.T) {
	c := testCorpus(t, 5, 1, 4)
	raw := encodeCertShard(c.Certs()[:5])
	raw[len(raw)-1] ^= 0xff // last digest byte
	if _, err := decodeCertShard(raw, 5, true); err == nil {
		t.Fatal("forged digest column accepted with VerifyDigests")
	} else if !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Without verification the forged digest is adopted (attestation model).
	certs, err := decodeCertShard(raw, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if certs[4].Fingerprint() == c.Cert(4).Cert.Fingerprint() {
		t.Fatal("expected adopted forged digest to differ")
	}
}

// A crafted scan shard whose per-scan observation counts wrap uint64 (5 and
// 2^64-5 sum to 0, sliding under a naive total-observations cap) must be
// rejected with an error before the counts reach make(), not panic the
// decode worker with "makeslice: len out of range".
func TestScanShardObsCountOverflow(t *testing.T) {
	var raw []byte
	for _, nObs := range []uint64{5, math.MaxUint64 - 4} {
		raw = binary.AppendUvarint(raw, 0) // operator
		raw = binary.AppendVarint(raw, 0)  // time delta
		raw = binary.AppendUvarint(raw, 0) // nanoseconds
		raw = binary.AppendUvarint(raw, nObs)
	}
	if _, err := decodeScanShard(raw, 2, 10); err == nil {
		t.Fatal("overflowing observation counts accepted")
	} else if !strings.Contains(err.Error(), "observations") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// forgeObsOverflow rewrites the last scan shard of a valid snapshot into one
// whose per-scan observation counts wrap the uint64 running total back to
// zero, recomputing the shard and header checksums so every integrity check
// passes and only the scan-shard decoder itself can reject it — the shape a
// random bit-flip can never produce.
func forgeObsOverflow(tb testing.TB, snap []byte) []byte {
	tb.Helper()
	fixed := snap[:headerFixed]
	nShards := int(binary.LittleEndian.Uint32(fixed[32:]) + binary.LittleEndian.Uint32(fixed[36:]))
	tableLen := nShards * tableEntry
	// Payloads sit after the table and header checksum, in table order; the
	// last shard is always a scan shard.
	off := headerFixed + tableLen + sha256.Size
	for i := 0; i < nShards-1; i++ {
		off += int(binary.LittleEndian.Uint64(snap[headerFixed+i*tableEntry+24:]))
	}
	last := headerFixed + (nShards-1)*tableEntry
	count := int(binary.LittleEndian.Uint64(snap[last+8:]))

	var raw []byte
	for i := 0; i < count; i++ {
		raw = binary.AppendUvarint(raw, 0) // operator
		raw = binary.AppendVarint(raw, 0)  // time delta
		raw = binary.AppendUvarint(raw, 0) // nanoseconds
		n := uint64(5)
		if i == count-1 {
			n = -uint64(5 * (count - 1)) // wraps the running total to zero
			if count == 1 {
				n = math.MaxUint64 // single-scan shard: one absurd claim
			}
		}
		raw = binary.AppendUvarint(raw, n)
	}
	comp, err := gzipShard(raw)
	if err != nil {
		tb.Fatal(err)
	}
	out := append([]byte(nil), snap[:off]...)
	out = append(out, comp...)
	binary.LittleEndian.PutUint64(out[last+16:], uint64(len(raw)))
	binary.LittleEndian.PutUint64(out[last+24:], uint64(len(comp)))
	sum := sha256.Sum256(comp)
	copy(out[last+32:], sum[:])
	head := sha256.Sum256(out[:headerFixed+tableLen])
	copy(out[headerFixed+tableLen:], head[:])
	return out
}

// The overflow shape must surface as an explicit Read error — not a decode
// worker panic — when carried by a fully checksummed v2 file.
func TestReadObsCountOverflowFile(t *testing.T) {
	forged := forgeObsOverflow(t, validV2(t))
	for _, workers := range []int{1, 4} {
		_, err := Read(bytes.NewReader(forged), Options{Workers: workers})
		if err == nil {
			t.Fatalf("forged snapshot accepted (workers=%d)", workers)
		}
		if !strings.Contains(err.Error(), "observations") {
			t.Fatalf("unexpected error: %v", err)
		}
	}
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0xff
	return out
}
