package snapshot

import (
	"bytes"
	"crypto/ed25519"
	"encoding/binary"
	"fmt"
	"math/big"
	"testing"
	"time"

	"securepki/internal/netsim"
	"securepki/internal/scanstore"
	"securepki/internal/x509lite"
)

// testCorpus builds a deterministic corpus: nCerts distinct self-signed
// certificates and nScans scans of obsPerScan observations each, with
// certificate IDs and IPs spread to exercise the delta coder's positive and
// negative branches.
func testCorpus(tb testing.TB, nCerts, nScans, obsPerScan int) *scanstore.Corpus {
	tb.Helper()
	c := scanstore.NewCorpus()
	for i := 0; i < nCerts; i++ {
		seed := make([]byte, ed25519.SeedSize)
		binary.LittleEndian.PutUint64(seed, uint64(i)+1)
		priv := ed25519.NewKeyFromSeed(seed)
		der, err := x509lite.CreateCertificate(&x509lite.Template{
			Version:      3,
			SerialNumber: big.NewInt(int64(i) + 1),
			Subject:      x509lite.Name{CommonName: fmt.Sprintf("device-%d.local", i)},
			Issuer:       x509lite.Name{CommonName: fmt.Sprintf("device-%d.local", i)},
			NotBefore:    time.Date(2013, 3, 1, 0, 0, 0, 0, time.UTC),
			NotAfter:     time.Date(2033, 3, 1, 0, 0, 0, 0, time.UTC),
			DNSNames:     []string{fmt.Sprintf("device-%d.local", i)},
		}, priv.Public().(ed25519.PublicKey), priv)
		if err != nil {
			tb.Fatal(err)
		}
		cert, err := x509lite.Parse(der)
		if err != nil {
			tb.Fatal(err)
		}
		if got := c.Intern(cert); int(got) != i {
			tb.Fatalf("intern %d returned %d", i, got)
		}
	}
	base := time.Date(2013, 6, 1, 4, 30, 0, 0, time.UTC)
	for s := 0; s < nScans; s++ {
		obs := make([]scanstore.Observation, obsPerScan)
		for j := range obs {
			// Deliberately non-monotonic IDs and IPs: deltas go negative.
			obs[j] = scanstore.Observation{
				Cert: scanstore.CertID((s*131 + j*89) % nCerts),
				IP:   netsim.IP(0x0a000000 + uint32((j*99991+s*7)%(1<<24))),
			}
		}
		op := scanstore.UMich
		if s%3 == 1 {
			op = scanstore.Rapid7
		}
		if _, err := c.AddScan(op, base.AddDate(0, 0, s).Add(time.Duration(s)*time.Minute), obs); err != nil {
			tb.Fatal(err)
		}
	}
	return c
}

// corpusEqual fails the test unless the two corpora are observably identical:
// same certificates (bytes and digests) in the same order, same scans with
// the same operator, instant and observation list.
func corpusEqual(tb testing.TB, want, got *scanstore.Corpus) {
	tb.Helper()
	if want.NumCerts() != got.NumCerts() {
		tb.Fatalf("cert count: want %d, got %d", want.NumCerts(), got.NumCerts())
	}
	for i := 0; i < want.NumCerts(); i++ {
		w, g := want.Cert(scanstore.CertID(i)), got.Cert(scanstore.CertID(i))
		if !bytes.Equal(w.Cert.Raw, g.Cert.Raw) {
			tb.Fatalf("cert %d DER differs", i)
		}
		if w.Cert.Fingerprint() != g.Cert.Fingerprint() {
			tb.Fatalf("cert %d fingerprint differs", i)
		}
		if w.Cert.PublicKeyFingerprint() != g.Cert.PublicKeyFingerprint() {
			tb.Fatalf("cert %d key fingerprint differs", i)
		}
	}
	if want.NumScans() != got.NumScans() {
		tb.Fatalf("scan count: want %d, got %d", want.NumScans(), got.NumScans())
	}
	for i := 0; i < want.NumScans(); i++ {
		w, g := want.Scan(scanstore.ScanID(i)), got.Scan(scanstore.ScanID(i))
		if w.Operator != g.Operator {
			tb.Fatalf("scan %d operator: want %v, got %v", i, w.Operator, g.Operator)
		}
		if !w.Time.Equal(g.Time) {
			tb.Fatalf("scan %d time: want %v, got %v", i, w.Time, g.Time)
		}
		if len(w.Obs) != len(g.Obs) {
			tb.Fatalf("scan %d observations: want %d, got %d", i, len(w.Obs), len(g.Obs))
		}
		for j := range w.Obs {
			if w.Obs[j] != g.Obs[j] {
				tb.Fatalf("scan %d observation %d: want %+v, got %+v", i, j, w.Obs[j], g.Obs[j])
			}
		}
	}
}

func encodeV2(tb testing.TB, c *scanstore.Corpus, opt Options) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, c, opt); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	// Shard sizes chosen so both kinds of shard have a ragged final shard.
	c := testCorpus(t, 150, 11, 400)
	opt := Options{CertsPerShard: 64, ScansPerShard: 3}
	raw := encodeV2(t, c, opt)

	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"serial", Options{Workers: 1}},
		{"parallel", Options{Workers: 8}},
		{"verify-digests", Options{Workers: 4, VerifyDigests: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Read(bytes.NewReader(raw), tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			corpusEqual(t, c, got)
		})
	}
}

// The file bytes must not depend on the worker count — shard boundaries are
// fixed by the data, workers only pick who compresses what.
func TestWriteDeterministicAcrossWorkers(t *testing.T) {
	c := testCorpus(t, 90, 7, 120)
	var ref []byte
	for _, workers := range []int{1, 2, 5, 16} {
		raw := encodeV2(t, c, Options{Workers: workers, CertsPerShard: 32, ScansPerShard: 2})
		if ref == nil {
			ref = raw
			continue
		}
		if !bytes.Equal(ref, raw) {
			t.Fatalf("Workers=%d produced different bytes than Workers=1", workers)
		}
	}
}

// Read must accept the v1 gzip+gob format transparently.
func TestReadV1(t *testing.T) {
	c := testCorpus(t, 40, 5, 60)
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	corpusEqual(t, c, got)
}

// v1 and v2 must load to observably identical corpora.
func TestV1V2Agree(t *testing.T) {
	c := testCorpus(t, 64, 6, 200)
	var v1 bytes.Buffer
	if err := c.Write(&v1); err != nil {
		t.Fatal(err)
	}
	fromV1, err := Read(bytes.NewReader(v1.Bytes()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	fromV2, err := Read(bytes.NewReader(encodeV2(t, c, Options{})), Options{})
	if err != nil {
		t.Fatal(err)
	}
	corpusEqual(t, fromV1, fromV2)
}

func TestRoundTripEmpty(t *testing.T) {
	c := scanstore.NewCorpus()
	got, err := Read(bytes.NewReader(encodeV2(t, c, Options{})), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumCerts() != 0 || got.NumScans() != 0 {
		t.Fatalf("want empty corpus, got %d certs, %d scans", got.NumCerts(), got.NumScans())
	}
}

// Scans with no observations and certificates never observed must survive.
func TestRoundTripSparse(t *testing.T) {
	c := testCorpus(t, 10, 0, 0)
	base := time.Date(2013, 6, 1, 0, 0, 0, 0, time.UTC)
	if _, err := c.AddScan(scanstore.UMich, base, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddScan(scanstore.Rapid7, base.AddDate(0, 0, 1),
		[]scanstore.Observation{{Cert: 3, IP: 42}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddScan(scanstore.UMich, base.AddDate(0, 0, 2), nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(encodeV2(t, c, Options{})), Options{})
	if err != nil {
		t.Fatal(err)
	}
	corpusEqual(t, c, got)
}

// Pre-epoch scan times exercise the negative absolute-seconds branch.
func TestRoundTripPreEpochTime(t *testing.T) {
	c := testCorpus(t, 3, 0, 0)
	if _, err := c.AddScan(scanstore.UMich, time.Date(1969, 7, 20, 20, 17, 40, 123, time.UTC),
		[]scanstore.Observation{{Cert: 1, IP: 7}}); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(encodeV2(t, c, Options{})), Options{})
	if err != nil {
		t.Fatal(err)
	}
	corpusEqual(t, c, got)
}

// Loaded certificates must have memoized digests: Intern on the loaded corpus
// must not redo SHA-256 work (digest column + ParseWithDigest adoption).
func TestLoadedCertsMemoized(t *testing.T) {
	c := testCorpus(t, 8, 2, 10)
	got, err := Read(bytes.NewReader(encodeV2(t, c, Options{})), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < got.NumCerts(); i++ {
		cert := got.Cert(scanstore.CertID(i)).Cert
		fp := cert.Fingerprint()
		if a := testing.AllocsPerRun(20, func() {
			if cert.Fingerprint() != fp {
				t.Fatal("unstable fingerprint")
			}
		}); a != 0 {
			t.Fatalf("cert %d Fingerprint allocates %.1f — digest not memoized on load", i, a)
		}
	}
}
