package snapshot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"securepki/internal/parallel"
	"securepki/internal/scanstore"
	"securepki/internal/x509lite"
)

// v3SectionData is one index section ready to write: key array, posting
// array, and the table-entry fields derived from them.
type v3SectionData struct {
	kind     uint32
	keyCount uint64
	keys     []byte
	post     []byte
}

// WriteV3 serialises the corpus in the v3 format: v2's sharded columnar
// payloads followed by the five point-lookup index sections. Like Write, the
// output is byte-identical at any opt.Workers value — index construction
// fans out over contiguous shard chunks merged in order, and every sort key
// is a total order over the data.
func WriteV3(w io.Writer, c *scanstore.Corpus, opt Options) error {
	opt = opt.withDefaults()
	certs, scans, obsCount, certRanges, scanRanges, err := prepareWrite(c, opt)
	if err != nil {
		return err
	}

	shards, err := encodeShards(certs, scans, certRanges, scanRanges, opt)
	if err != nil {
		return err
	}
	sections, err := buildV3Sections(c, certRanges, opt)
	if err != nil {
		return err
	}
	var indexBytes int64
	for _, s := range sections {
		indexBytes += int64(len(s.keys)) + int64(len(s.post))
	}
	opt.Obs.Counter("snapshot.encode.shards").Add(int64(len(shards)))
	opt.Obs.Counter("snapshot.encode.certs").Add(int64(len(certs)))
	opt.Obs.Counter("snapshot.encode.scans").Add(int64(len(scans)))
	opt.Obs.Counter("snapshot.encode.observations").Add(int64(obsCount))
	opt.Obs.Counter("snapshot.encode.index_bytes").Add(indexBytes)

	// Fixed header, shard table, index table, header digest.
	var head bytes.Buffer
	head.WriteString(MagicV3)
	putU64(&head, uint64(len(certs)))
	putU64(&head, uint64(len(scans)))
	putU64(&head, obsCount)
	putU32(&head, uint32(len(certRanges)))
	putU32(&head, uint32(len(scanRanges)))
	putU32(&head, V3SectionCount)
	putU32(&head, 0) // reserved
	for _, sh := range shards {
		putU64(&head, uint64(sh.first))
		putU64(&head, uint64(sh.count))
		putU64(&head, uint64(sh.rawLen))
		putU64(&head, uint64(len(sh.comp)))
		head.Write(sh.sum[:])
	}
	for _, s := range sections {
		putU32(&head, s.kind)
		putU32(&head, v3EntrySize(s.kind))
		putU64(&head, s.keyCount)
		putU64(&head, uint64(len(s.post)))
		putU64(&head, 0) // reserved
		sum := sha256SectionSum(s.keys, s.post)
		head.Write(sum[:])
	}
	headSum := sha256SectionSum(head.Bytes(), nil)
	head.Write(headSum[:])
	if _, err := w.Write(head.Bytes()); err != nil {
		return fmt.Errorf("snapshot: write header: %w", err)
	}

	off := int64(head.Len())
	for i, sh := range shards {
		if _, err := w.Write(sh.comp); err != nil {
			return fmt.Errorf("snapshot: write shard %d: %w", i, err)
		}
		off += int64(len(sh.comp))
	}
	var zeros [8]byte
	writePad := func() error {
		if n := pad8(off); n > 0 {
			if _, err := w.Write(zeros[:n]); err != nil {
				return fmt.Errorf("snapshot: write padding: %w", err)
			}
			off += n
		}
		return nil
	}
	if err := writePad(); err != nil {
		return err
	}
	for i, s := range sections {
		if _, err := w.Write(s.keys); err != nil {
			return fmt.Errorf("snapshot: write index section %d keys: %w", i, err)
		}
		off += int64(len(s.keys))
		if _, err := w.Write(s.post); err != nil {
			return fmt.Errorf("snapshot: write index section %d postings: %w", i, err)
		}
		off += int64(len(s.post))
		if err := writePad(); err != nil {
			return err
		}
	}
	return nil
}

// fpLoc locates one certificate: where its DER lives (shard, offset into the
// uncompressed payload, length) keyed by fingerprint.
type fpLoc struct {
	fp               x509lite.Fingerprint
	shard, off, dlen uint32
}

// buildV3Sections constructs the five index sections. certRanges must be the
// same shard boundaries the payloads were encoded with — on the write path
// they come from the sizing knobs, on the verify path from the file's own
// shard table. Every stage is deterministic in opt.Workers: parallel loops
// own contiguous chunks, partial results merge in chunk order, and final
// orders come from sorts with total keys.
func buildV3Sections(c *scanstore.Corpus, certRanges []shardRange, opt Options) ([V3SectionCount]v3SectionData, error) {
	var out [V3SectionCount]v3SectionData
	certs := c.Certs()
	scans := c.Scans()
	w := opt.Workers

	// Per-shard DER locations, then one global sort by fingerprint. Offsets
	// replay encodeCertShard's layout: the uvarint length column precedes the
	// concatenated DER bytes.
	locs := make([]fpLoc, len(certs))
	parallel.Do(w, len(certRanges), func(_, lo, hi int) {
		for si := lo; si < hi; si++ {
			rg := certRanges[si]
			recs := certs[rg.first : rg.first+rg.count]
			off := 0
			for _, rec := range recs {
				off += uvarintLen(uint64(len(rec.Cert.Raw)))
			}
			for j, rec := range recs {
				locs[rg.first+j] = fpLoc{
					fp:    rec.Cert.Fingerprint(),
					shard: uint32(si),
					off:   uint32(off),
					dlen:  uint32(len(rec.Cert.Raw)),
				}
				off += len(rec.Cert.Raw)
			}
		}
	})
	order := make([]int, len(certs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return bytes.Compare(locs[order[a]].fp[:], locs[order[b]].fp[:]) < 0
	})
	// refOf maps CertID → position in the sorted fingerprint index; all
	// posting arrays reference certificates through it.
	refOf := make([]uint32, len(certs))
	fpKeys := make([]byte, len(certs)*V3FPEntry)
	for pos, id := range order {
		refOf[id] = uint32(pos)
		l := locs[id]
		e := fpKeys[pos*V3FPEntry:]
		copy(e[:32], l.fp[:])
		binary.LittleEndian.PutUint32(e[32:], l.shard)
		binary.LittleEndian.PutUint32(e[36:], l.off)
		binary.LittleEndian.PutUint32(e[40:], l.dlen)
	}
	out[0] = v3SectionData{kind: V3KindFP, keyCount: uint64(len(certs)), keys: fpKeys}

	// SPKI → cert set: hash every public key in parallel, sort (spki, ref).
	spkis := parallel.Map(w, len(certs), func(i int) x509lite.Fingerprint {
		return certs[i].Cert.PublicKeyFingerprint()
	})
	spkiOrder := make([]int, len(certs))
	for i := range spkiOrder {
		spkiOrder[i] = i
	}
	sort.Slice(spkiOrder, func(a, b int) bool {
		ia, ib := spkiOrder[a], spkiOrder[b]
		if cmp := bytes.Compare(spkis[ia][:], spkis[ib][:]); cmp != 0 {
			return cmp < 0
		}
		return refOf[ia] < refOf[ib]
	})
	var spkiKeys, spkiPost []byte
	for lo := 0; lo < len(spkiOrder); {
		hi := lo
		for hi < len(spkiOrder) && spkis[spkiOrder[hi]] == spkis[spkiOrder[lo]] {
			hi++
		}
		var e [V3SPKIEntry]byte
		copy(e[:32], spkis[spkiOrder[lo]][:])
		binary.LittleEndian.PutUint32(e[32:], uint32(lo))
		binary.LittleEndian.PutUint32(e[36:], uint32(hi-lo))
		spkiKeys = append(spkiKeys, e[:]...)
		for _, id := range spkiOrder[lo:hi] {
			spkiPost = binary.LittleEndian.AppendUint32(spkiPost, refOf[id])
		}
		lo = hi
	}
	out[1] = v3SectionData{kind: V3KindSPKI, keyCount: uint64(len(spkiKeys) / V3SPKIEntry), keys: spkiKeys, post: spkiPost}

	// IP → (scan, cert) sightings: invert scans in parallel chunks, merge in
	// scan order, then sort and deduplicate the (ip, scan, ref) triples.
	type ipTriple struct{ ip, scan, ref uint32 }
	nChunks := parallel.NumShards(w, len(scans))
	ipParts := make([][]ipTriple, nChunks)
	parallel.Do(w, len(scans), func(chunk, lo, hi int) {
		var part []ipTriple
		for si := lo; si < hi; si++ {
			for _, o := range scans[si].Obs {
				part = append(part, ipTriple{ip: uint32(o.IP), scan: uint32(si), ref: refOf[o.Cert]})
			}
		}
		ipParts[chunk] = part
	})
	var triples []ipTriple
	for _, part := range ipParts {
		triples = append(triples, part...)
	}
	sort.Slice(triples, func(a, b int) bool {
		if triples[a].ip != triples[b].ip {
			return triples[a].ip < triples[b].ip
		}
		if triples[a].scan != triples[b].scan {
			return triples[a].scan < triples[b].scan
		}
		return triples[a].ref < triples[b].ref
	})
	var ipKeys, ipPost []byte
	elems := uint32(0)
	for lo := 0; lo < len(triples); {
		hi := lo
		for hi < len(triples) && triples[hi].ip == triples[lo].ip {
			hi++
		}
		start, count := elems, uint32(0)
		prev := ipTriple{}
		for k, t := range triples[lo:hi] {
			if k > 0 && t == prev {
				continue // repeat sighting of the same (scan, cert) at this IP
			}
			prev = t
			ipPost = binary.LittleEndian.AppendUint32(ipPost, t.scan)
			ipPost = binary.LittleEndian.AppendUint32(ipPost, t.ref)
			count++
		}
		elems += count
		var e [V3IPEntry]byte
		binary.LittleEndian.PutUint32(e[0:], triples[lo].ip)
		binary.LittleEndian.PutUint32(e[4:], start)
		binary.LittleEndian.PutUint32(e[8:], count)
		ipKeys = append(ipKeys, e[:]...)
		lo = hi
	}
	out[2] = v3SectionData{kind: V3KindIP, keyCount: uint64(len(ipKeys) / V3IPEntry), keys: ipKeys, post: ipPost}

	// AS → cert set, only when the writer has a network view. Resolution
	// fans out per scan chunk; (asn, ref) pairs sort and deduplicate like the
	// IP triples. A nil ASOf leaves the section empty, never wrong.
	var asKeys, asPost []byte
	var asKeyCount uint64
	if opt.ASOf != nil {
		type asRef struct{ asn, ref uint32 }
		asParts := make([][]asRef, nChunks)
		asErrs := make([]error, nChunks)
		parallel.Do(w, len(scans), func(chunk, lo, hi int) {
			var part []asRef
			for si := lo; si < hi; si++ {
				at := scans[si].Time
				for _, o := range scans[si].Obs {
					asn, ok := opt.ASOf(o.IP, at)
					if !ok {
						continue
					}
					if asn < 0 || int64(asn) > math.MaxUint32 {
						asErrs[chunk] = fmt.Errorf("snapshot: AS number %d outside uint32", asn)
						return
					}
					part = append(part, asRef{asn: uint32(asn), ref: refOf[o.Cert]})
				}
			}
			asParts[chunk] = part
		})
		for _, err := range asErrs {
			if err != nil {
				return out, err
			}
		}
		var pairs []asRef
		for _, part := range asParts {
			pairs = append(pairs, part...)
		}
		sort.Slice(pairs, func(a, b int) bool {
			if pairs[a].asn != pairs[b].asn {
				return pairs[a].asn < pairs[b].asn
			}
			return pairs[a].ref < pairs[b].ref
		})
		elems := uint32(0)
		for lo := 0; lo < len(pairs); {
			hi := lo
			for hi < len(pairs) && pairs[hi].asn == pairs[lo].asn {
				hi++
			}
			start, count := elems, uint32(0)
			prev := asRef{}
			for k, p := range pairs[lo:hi] {
				if k > 0 && p == prev {
					continue
				}
				prev = p
				asPost = binary.LittleEndian.AppendUint32(asPost, p.ref)
				count++
			}
			elems += count
			var e [V3ASEntry]byte
			binary.LittleEndian.PutUint32(e[0:], pairs[lo].asn)
			binary.LittleEndian.PutUint32(e[4:], start)
			binary.LittleEndian.PutUint32(e[8:], count)
			asKeys = append(asKeys, e[:]...)
			lo = hi
		}
		asKeyCount = uint64(len(asKeys) / V3ASEntry)
	}
	out[3] = v3SectionData{kind: V3KindAS, keyCount: asKeyCount, keys: asKeys, post: asPost}

	// Scan metadata, in scan-ID order — small, serial.
	metaKeys := make([]byte, len(scans)*V3ScanMetaEntry)
	for i, s := range scans {
		if int64(s.Operator) < 0 || int64(s.Operator) > 1<<20 {
			return out, fmt.Errorf("snapshot: scan %d operator %d outside format range", i, s.Operator)
		}
		if uint64(len(s.Obs)) > math.MaxUint32 {
			return out, fmt.Errorf("snapshot: scan %d has %d observations, cap %d", i, len(s.Obs), uint32(math.MaxUint32))
		}
		e := metaKeys[i*V3ScanMetaEntry:]
		binary.LittleEndian.PutUint32(e[0:], uint32(s.Operator))
		binary.LittleEndian.PutUint32(e[4:], uint32(s.Time.Nanosecond()))
		binary.LittleEndian.PutUint64(e[8:], uint64(s.Time.Unix()))
		binary.LittleEndian.PutUint32(e[16:], uint32(len(s.Obs)))
	}
	out[4] = v3SectionData{kind: V3KindScanMeta, keyCount: uint64(len(scans)), keys: metaKeys}
	return out, nil
}
