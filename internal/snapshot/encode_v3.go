package snapshot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"slices"

	"securepki/internal/extsort"
	"securepki/internal/parallel"
	"securepki/internal/scanstore"
	"securepki/internal/x509lite"
)

// v3SectionData is one index section ready to write: key array, posting
// array, and the table-entry fields derived from them.
type v3SectionData struct {
	kind     uint32
	keyCount uint64
	keys     []byte
	post     []byte
}

// WriteV3 serialises the corpus in the v3 format: v2's sharded columnar
// payloads followed by the five point-lookup index sections. Like Write, the
// output is byte-identical at any opt.Workers value — index construction
// fans out over contiguous shard chunks merged in order, and every sort key
// is a total order over the data.
func WriteV3(w io.Writer, c *scanstore.Corpus, opt Options) error {
	opt = opt.withDefaults()
	certs, scans, obsCount, certRanges, scanRanges, err := prepareWrite(c, opt)
	if err != nil {
		return err
	}

	shards, err := encodeShards(certs, scans, certRanges, scanRanges, opt)
	if err != nil {
		return err
	}
	sections, err := buildV3Sections(c, certRanges, opt)
	if err != nil {
		return err
	}
	var indexBytes int64
	for _, s := range sections {
		indexBytes += int64(len(s.keys)) + int64(len(s.post))
	}
	opt.Obs.Counter("snapshot.encode.shards").Add(int64(len(shards)))
	opt.Obs.Counter("snapshot.encode.certs").Add(int64(len(certs)))
	opt.Obs.Counter("snapshot.encode.scans").Add(int64(len(scans)))
	opt.Obs.Counter("snapshot.encode.observations").Add(int64(obsCount))
	opt.Obs.Counter("snapshot.encode.index_bytes").Add(indexBytes)

	// Fixed header, shard table, index table, header digest.
	var head bytes.Buffer
	head.WriteString(MagicV3)
	putU64(&head, uint64(len(certs)))
	putU64(&head, uint64(len(scans)))
	putU64(&head, obsCount)
	putU32(&head, uint32(len(certRanges)))
	putU32(&head, uint32(len(scanRanges)))
	putU32(&head, V3SectionCount)
	putU32(&head, 0) // reserved
	for _, sh := range shards {
		putU64(&head, uint64(sh.first))
		putU64(&head, uint64(sh.count))
		putU64(&head, uint64(sh.rawLen))
		putU64(&head, uint64(len(sh.comp)))
		head.Write(sh.sum[:])
	}
	for _, s := range sections {
		putU32(&head, s.kind)
		putU32(&head, v3EntrySize(s.kind))
		putU64(&head, s.keyCount)
		putU64(&head, uint64(len(s.post)))
		putU64(&head, 0) // reserved
		sum := sha256SectionSum(s.keys, s.post)
		head.Write(sum[:])
	}
	headSum := sha256SectionSum(head.Bytes(), nil)
	head.Write(headSum[:])
	if _, err := w.Write(head.Bytes()); err != nil {
		return fmt.Errorf("snapshot: write header: %w", err)
	}

	off := int64(head.Len())
	for i, sh := range shards {
		if _, err := w.Write(sh.comp); err != nil {
			return fmt.Errorf("snapshot: write shard %d: %w", i, err)
		}
		off += int64(len(sh.comp))
	}
	var zeros [8]byte
	writePad := func() error {
		if n := pad8(off); n > 0 {
			if _, err := w.Write(zeros[:n]); err != nil {
				return fmt.Errorf("snapshot: write padding: %w", err)
			}
			off += n
		}
		return nil
	}
	if err := writePad(); err != nil {
		return err
	}
	for i, s := range sections {
		if _, err := w.Write(s.keys); err != nil {
			return fmt.Errorf("snapshot: write index section %d keys: %w", i, err)
		}
		off += int64(len(s.keys))
		if _, err := w.Write(s.post); err != nil {
			return fmt.Errorf("snapshot: write index section %d postings: %w", i, err)
		}
		off += int64(len(s.post))
		if err := writePad(); err != nil {
			return err
		}
	}
	return nil
}

// fpLoc locates one certificate: where its DER lives (shard, offset into the
// uncompressed payload, length) keyed by fingerprint.
type fpLoc struct {
	fp               x509lite.Fingerprint
	shard, off, dlen uint32
}

// buildV3Sections constructs the five index sections. certRanges must be the
// same shard boundaries the payloads were encoded with — on the write path
// they come from the sizing knobs, on the verify path from the file's own
// shard table. Every stage is deterministic in opt.Workers: parallel loops
// own contiguous chunks, partial results merge in chunk order, and final
// orders come from sorts with total keys.
func buildV3Sections(c *scanstore.Corpus, certRanges []shardRange, opt Options) ([V3SectionCount]v3SectionData, error) {
	var out [V3SectionCount]v3SectionData
	certs := c.Certs()
	scans := c.Scans()
	w := opt.Workers

	// Per-shard DER locations, then one global sort by fingerprint. Offsets
	// replay encodeCertShard's layout: the uvarint length column precedes the
	// concatenated DER bytes.
	locs := make([]fpLoc, len(certs))
	parallel.Do(w, len(certRanges), func(_, lo, hi int) {
		for si := lo; si < hi; si++ {
			rg := certRanges[si]
			recs := certs[rg.first : rg.first+rg.count]
			off := 0
			for _, rec := range recs {
				off += uvarintLen(uint64(len(rec.Cert.Raw)))
			}
			for j, rec := range recs {
				locs[rg.first+j] = fpLoc{
					fp:    rec.Cert.Fingerprint(),
					shard: uint32(si),
					off:   uint32(off),
					dlen:  uint32(len(rec.Cert.Raw)),
				}
				off += len(rec.Cert.Raw)
			}
		}
	})
	// Fingerprints are unique, so chunk-sorting and merging yields the same
	// total order as one big sort at any worker count — without reflect-based
	// sort.Slice, which dominated the v3 write profile.
	order := sortedIdentity(w, len(certs), func(a, b int) int {
		return bytes.Compare(locs[a].fp[:], locs[b].fp[:])
	})
	// refOf maps CertID → position in the sorted fingerprint index; all
	// posting arrays reference certificates through it.
	refOf := make([]uint32, len(certs))
	for pos, id := range order {
		refOf[id] = uint32(pos)
	}
	// SPKI hashes fan out before the section builds: x509lite memoises them,
	// so each digest buffer is computed once here and reused by every section
	// that keys on it.
	spkis := parallel.Map(w, len(certs), func(i int) x509lite.Fingerprint {
		return certs[i].Cert.PublicKeyFingerprint()
	})

	// With refOf fixed, the five sections share no further state and build
	// concurrently; each task parallelises internally over the same worker
	// knob. Validation failures land in per-task error slots.
	var asErr, metaErr error
	parallel.ForEach(w, 5, func(task int) {
		switch task {
		case 0:
			fpKeys := make([]byte, len(certs)*V3FPEntry)
			parallel.Do(w, len(order), func(_, lo, hi int) {
				for pos := lo; pos < hi; pos++ {
					l := locs[order[pos]]
					e := fpKeys[pos*V3FPEntry:]
					copy(e[:32], l.fp[:])
					binary.LittleEndian.PutUint32(e[32:], l.shard)
					binary.LittleEndian.PutUint32(e[36:], l.off)
					binary.LittleEndian.PutUint32(e[40:], l.dlen)
				}
			})
			out[0] = v3SectionData{kind: V3KindFP, keyCount: uint64(len(certs)), keys: fpKeys}

		case 1:
			// SPKI → cert set, ordered by (spki, ref) — a total order, since
			// refOf is a bijection over certificates.
			spkiOrder := sortedIdentity(w, len(certs), func(a, b int) int {
				if cmp := bytes.Compare(spkis[a][:], spkis[b][:]); cmp != 0 {
					return cmp
				}
				switch {
				case refOf[a] < refOf[b]:
					return -1
				case refOf[a] > refOf[b]:
					return 1
				}
				return 0
			})
			spkiKeys := make([]byte, 0, 4*V3SPKIEntry)
			spkiPost := make([]byte, 0, 4*len(certs))
			for lo := 0; lo < len(spkiOrder); {
				hi := lo
				for hi < len(spkiOrder) && spkis[spkiOrder[hi]] == spkis[spkiOrder[lo]] {
					hi++
				}
				var e [V3SPKIEntry]byte
				copy(e[:32], spkis[spkiOrder[lo]][:])
				binary.LittleEndian.PutUint32(e[32:], uint32(lo))
				binary.LittleEndian.PutUint32(e[36:], uint32(hi-lo))
				spkiKeys = append(spkiKeys, e[:]...)
				for _, id := range spkiOrder[lo:hi] {
					spkiPost = binary.LittleEndian.AppendUint32(spkiPost, refOf[id])
				}
				lo = hi
			}
			out[1] = v3SectionData{kind: V3KindSPKI, keyCount: uint64(len(spkiKeys) / V3SPKIEntry), keys: spkiKeys, post: spkiPost}

		case 2:
			// IP → (scan, cert) sightings. Each (ip, scan, ref) triple packs
			// into a radixRec — hi: ip, lo: scan<<32|ref — built in parallel
			// chunks whose in-order concatenation reproduces scan order at any
			// worker count. A stable LSD radix sort then replaces the
			// comparator sort that dominated the v3 write profile.
			nChunks := parallel.NumShards(w, len(scans))
			parts := make([][]radixRec, nChunks)
			parallel.Do(w, len(scans), func(chunk, lo, hi int) {
				n := 0
				for si := lo; si < hi; si++ {
					n += len(scans[si].Obs)
				}
				part := make([]radixRec, 0, n)
				for si := lo; si < hi; si++ {
					for _, o := range scans[si].Obs {
						part = append(part, radixRec{hi: uint32(o.IP), lo: uint64(si)<<32 | uint64(refOf[o.Cert])})
					}
				}
				parts[chunk] = part
			})
			total := 0
			for _, p := range parts {
				total += len(p)
			}
			recs := make([]radixRec, 0, total)
			for _, p := range parts {
				recs = append(recs, p...)
			}
			radixSort(recs)
			ipKeys := make([]byte, 0, V3IPEntry*16)
			ipPost := make([]byte, 0, 8*total)
			elems := uint32(0)
			var curIP, start, count uint32
			var prev radixRec
			started := false
			flushIP := func() {
				var e [V3IPEntry]byte
				binary.LittleEndian.PutUint32(e[0:], curIP)
				binary.LittleEndian.PutUint32(e[4:], start)
				binary.LittleEndian.PutUint32(e[8:], count)
				ipKeys = append(ipKeys, e[:]...)
			}
			for _, r := range recs {
				if started && r == prev {
					continue // repeat sighting of the same (scan, cert) at this IP
				}
				if started && r.hi != curIP {
					flushIP()
					curIP, start, count = r.hi, elems, 0
				} else if !started {
					curIP = r.hi
				}
				started = true
				prev = r
				ipPost = binary.LittleEndian.AppendUint32(ipPost, uint32(r.lo>>32))
				ipPost = binary.LittleEndian.AppendUint32(ipPost, uint32(r.lo))
				count++
				elems++
			}
			if started {
				flushIP()
			}
			out[2] = v3SectionData{kind: V3KindIP, keyCount: uint64(len(ipKeys) / V3IPEntry), keys: ipKeys, post: ipPost}

		case 3:
			// AS → cert set, only when the writer has a network view; the IP
			// section's shape over (asn, ref) records — hi: asn, lo: ref. A
			// nil ASOf leaves the section empty, never wrong.
			if opt.ASOf == nil {
				out[3] = v3SectionData{kind: V3KindAS}
				return
			}
			nChunks := parallel.NumShards(w, len(scans))
			parts := make([][]radixRec, nChunks)
			asErrs := make([]error, nChunks)
			parallel.Do(w, len(scans), func(chunk, lo, hi int) {
				n := 0
				for si := lo; si < hi; si++ {
					n += len(scans[si].Obs)
				}
				part := make([]radixRec, 0, n)
				for si := lo; si < hi; si++ {
					at := scans[si].Time
					for _, o := range scans[si].Obs {
						asn, ok := opt.ASOf(o.IP, at)
						if !ok {
							continue
						}
						if asn < 0 || int64(asn) > math.MaxUint32 {
							asErrs[chunk] = fmt.Errorf("snapshot: AS number %d outside uint32", asn)
							return
						}
						part = append(part, radixRec{hi: uint32(asn), lo: uint64(refOf[o.Cert])})
					}
				}
				parts[chunk] = part
			})
			for _, err := range asErrs {
				if err != nil {
					asErr = err
					return
				}
			}
			total := 0
			for _, p := range parts {
				total += len(p)
			}
			recs := make([]radixRec, 0, total)
			for _, p := range parts {
				recs = append(recs, p...)
			}
			radixSort(recs)
			asKeys := make([]byte, 0, V3ASEntry*16)
			asPost := make([]byte, 0, 4*total)
			elems := uint32(0)
			var curASN, start, count uint32
			var prev radixRec
			started := false
			flushAS := func() {
				var e [V3ASEntry]byte
				binary.LittleEndian.PutUint32(e[0:], curASN)
				binary.LittleEndian.PutUint32(e[4:], start)
				binary.LittleEndian.PutUint32(e[8:], count)
				asKeys = append(asKeys, e[:]...)
			}
			for _, r := range recs {
				if started && r == prev {
					continue
				}
				if started && r.hi != curASN {
					flushAS()
					curASN, start, count = r.hi, elems, 0
				} else if !started {
					curASN = r.hi
				}
				started = true
				prev = r
				asPost = binary.LittleEndian.AppendUint32(asPost, uint32(r.lo))
				count++
				elems++
			}
			if started {
				flushAS()
			}
			out[3] = v3SectionData{kind: V3KindAS, keyCount: uint64(len(asKeys) / V3ASEntry), keys: asKeys, post: asPost}

		case 4:
			// Scan metadata, in scan-ID order — small, serial.
			metaKeys := make([]byte, len(scans)*V3ScanMetaEntry)
			for i, s := range scans {
				if int64(s.Operator) < 0 || int64(s.Operator) > 1<<20 {
					metaErr = fmt.Errorf("snapshot: scan %d operator %d outside format range", i, s.Operator)
					return
				}
				if uint64(len(s.Obs)) > math.MaxUint32 {
					metaErr = fmt.Errorf("snapshot: scan %d has %d observations, cap %d", i, len(s.Obs), uint32(math.MaxUint32))
					return
				}
				e := metaKeys[i*V3ScanMetaEntry:]
				binary.LittleEndian.PutUint32(e[0:], uint32(s.Operator))
				binary.LittleEndian.PutUint32(e[4:], uint32(s.Time.Nanosecond()))
				binary.LittleEndian.PutUint64(e[8:], uint64(s.Time.Unix()))
				binary.LittleEndian.PutUint32(e[16:], uint32(len(s.Obs)))
			}
			out[4] = v3SectionData{kind: V3KindScanMeta, keyCount: uint64(len(scans)), keys: metaKeys}
		}
	})
	if asErr != nil {
		return out, asErr
	}
	if metaErr != nil {
		return out, metaErr
	}
	return out, nil
}

// radixRec is one packed posting record for radixSort, ordered by (hi, lo).
// The whole record is the sort key, so equal records are identical and no
// tie-break is needed.
type radixRec struct {
	hi uint32
	lo uint64
}

// radixSort orders recs by (hi, lo) with a stable LSD radix sort over 16-bit
// digits, skipping digits on which every record agrees (scan and AS numbers
// rarely use their high halves). O(n) per pass with no comparator calls — the
// posting-array sorts this replaces dominated the v3 write profile.
func radixSort(recs []radixRec) {
	if len(recs) < 2 {
		return
	}
	digit := func(r radixRec, d int) uint32 {
		if d < 4 {
			return uint32(r.lo>>(16*uint(d))) & 0xffff
		}
		return r.hi >> (16 * uint(d-4)) & 0xffff
	}
	// One pass histograms all six digits up front; a digit whose bucket holds
	// every record is the identity and skips its scatter. Uniformity is a
	// property of the multiset, so probing any record's digit — recs[0] even
	// after earlier scatters — is sound.
	counts := new([6][1 << 16]int32)
	for _, r := range recs {
		counts[0][uint16(r.lo)]++
		counts[1][uint16(r.lo>>16)]++
		counts[2][uint16(r.lo>>32)]++
		counts[3][uint16(r.lo>>48)]++
		counts[4][uint16(r.hi)]++
		counts[5][uint16(r.hi>>16)]++
	}
	tmp := make([]radixRec, len(recs))
	src, dst := recs, tmp
	for d := 0; d < 6; d++ {
		count := &counts[d]
		if count[digit(recs[0], d)] == int32(len(recs)) {
			continue
		}
		sum := int32(0)
		for i, c := range count {
			count[i] = sum
			sum += c
		}
		for _, r := range src {
			b := digit(r, d)
			dst[count[b]] = r
			count[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &recs[0] {
		copy(recs, src)
	}
}

// sortedIdentity returns the permutation [0, n) ordered by cmp: contiguous
// chunks sort in parallel with the non-reflective slices.SortFunc and merge
// in order. cmp must be a total order (or map equal elements to
// interchangeable values) so the result is identical at any worker count.
func sortedIdentity(workers, n int, cmp func(a, b int) int) []int {
	shards := parallel.NumShards(workers, n)
	runs := make([][]int, shards)
	parallel.Do(workers, n, func(shard, lo, hi int) {
		run := make([]int, hi-lo)
		for i := range run {
			run[i] = lo + i
		}
		slices.SortFunc(run, cmp)
		runs[shard] = run
	})
	if shards == 1 {
		return runs[0]
	}
	out := make([]int, 0, n)
	extsort.MergeSorted(runs, func(a, b int) bool { return cmp(a, b) < 0 }, func(id int) {
		out = append(out, id)
	})
	return out
}
