// Package snapshot is the v2 on-disk corpus format: a sharded, columnar,
// checksummed container replacing the serial gzip+gob blob of
// scanstore.Write (v1). The paper's pipeline front-loads all of its cost
// into corpus I/O — 222 full-IPv4 scans and ~80M certificates must be
// loaded, parsed and indexed before any analysis runs — so the snapshot
// layer is built around three ideas:
//
//   - Sharding. Certificates and scans are split into fixed-size shards,
//     each independently gzip-compressed and SHA-256-checksummed, so both
//     encode and decode fan out across internal/parallel workers. Decode
//     re-parses each shard's DERs inside its own worker, which is where the
//     wall-clock goes (ParsEval: parse cost dominates certificate churn).
//
//   - Columns. Within a shard, like data sits together: certificate lengths,
//     then DER bytes, then digests; scan metadata, then certificate-ID
//     deltas, then IP deltas. Observations are varint delta-encoded per scan
//     (consecutive sightings cluster in address space), which shrinks the
//     uncompressed observation stream several-fold versus gob's per-struct
//     framing — less to decompress, less to decode.
//
//   - Distrust. Every shard carries a SHA-256 of its compressed payload and
//     the header carries a SHA-256 of itself, so truncation, bit rot and
//     hostile edits fail with explicit errors instead of panics or OOM;
//     decode enforces hard caps on every length field before allocating.
//
// Read sniffs the format version: files beginning with the gzip magic are
// delegated to scanstore.ReadFrom (v1) for migration, so every consumer of
// this package reads both formats transparently. Writing v1 remains
// available via scanstore.Write.
//
// Layout (all header integers little-endian; see DESIGN.md "Snapshot
// format v2" for the byte-level story):
//
//	magic      [8]byte  "SPKISNP2"
//	certCount  uint64
//	scanCount  uint64
//	obsCount   uint64
//	certShards uint32
//	scanShards uint32
//	shard table: certShards entries, then scanShards entries, each
//	  first    uint64   first certificate / scan index in the shard
//	  count    uint64   number of certificates / scans
//	  rawLen   uint64   uncompressed payload length
//	  compLen  uint64   compressed payload length
//	  sum      [32]byte SHA-256 of the compressed payload
//	headerSum  [32]byte SHA-256 of everything above
//	payloads, concatenated in table order
//
// Certificate shard payload (uncompressed): count uvarint DER lengths, the
// concatenated DER bytes, then count 32-byte SHA-256 digests. The stored
// digest feeds x509lite.ParseWithDigest so loading skips re-hashing every
// certificate; the shard checksum owns integrity.
//
// Scan shard payload: per scan — uvarint operator, varint unix-seconds
// delta from the previous scan in the shard (first scan absolute), uvarint
// nanoseconds, uvarint observation count — then the certificate-ID column
// (varint deltas, resetting to a zero base at each scan boundary), then the
// IP column (same scheme). Times are normalised to UTC on load.
//
// The writer's output is byte-identical at any worker count: shard
// boundaries depend only on the data and the per-shard sizing knobs, and
// workers change nothing but which goroutine compresses which shard.
package snapshot

import (
	"compress/gzip"
	"time"

	"securepki/internal/netsim"
	"securepki/internal/obs"
	"securepki/internal/parallel"
)

// Magic opens every v2 snapshot.
const Magic = "SPKISNP2"

// Format caps, enforced by the writer and (distrustfully) by the reader.
const (
	// MaxCertDER bounds a single certificate's DER encoding. The corpus's
	// real certificates are a few hundred bytes; 16 MiB is generous for any
	// legitimate input and small enough to make absurd-length headers an
	// explicit error instead of an allocation.
	MaxCertDER = 1 << 24
	// maxShardRaw bounds one shard's uncompressed payload.
	maxShardRaw = 1 << 30
	// maxExpansion bounds the claimed decompression ratio of a shard,
	// rejecting gzip bombs before inflating them.
	maxExpansion = 1 << 14
	// maxShards bounds the shard table.
	maxShards = 1 << 16
	// maxCerts and maxScans mirror the int32 index types in scanstore.
	maxCerts = 1<<31 - 1
	maxScans = 1<<31 - 1
)

// shardCompression is the gzip level for shard payloads. BestSpeed keeps the
// write path fast (snapshotting must not dominate a scan campaign, the "Ten
// Years of ZMap" lesson) and costs only a few percent of size on this data.
const shardCompression = gzip.BestSpeed

// Options tunes encode/decode. The zero value is ready to use.
type Options struct {
	// Workers bounds the encode/decode worker pool; <= 0 means GOMAXPROCS.
	// Output bytes and the loaded corpus are identical at any setting.
	Workers int
	// CertsPerShard is the certificate-shard granularity (default 2048).
	CertsPerShard int
	// ScansPerShard is the scan-shard granularity (default 4).
	ScansPerShard int
	// VerifyDigests makes Read recompute every certificate's SHA-256 and
	// compare it against the stored digest column. The plain checksums
	// detect accidental corruption only, not tampering: an attacker who can
	// rewrite the file rewrites the digest column and the shard/header
	// checksums to match, installing forged fingerprints that skew dedup
	// and key-sharing analyses. Enable this when loading a snapshot from an
	// untrusted source; leave it off for snapshots you produced yourself,
	// where re-hashing every DER only slows the load.
	VerifyDigests bool
	// ASOf resolves an IP to its announcing AS number at a point in time;
	// WriteV3 uses it to build the AS → cert-set index (scangen passes the
	// simulated Internet's Lookup). nil writes an empty AS section — v3 files
	// produced without a network model simply answer no AS queries. The other
	// index sections never depend on it. Ignored by Write (v2) and Read.
	ASOf func(ip netsim.IP, at time.Time) (asn int, ok bool)
	// Obs receives codec metrics (snapshot.encode.* / snapshot.decode.*:
	// per-shard raw/compressed byte counts, inflate ratios, digest-verify
	// counts). nil disables instrumentation. Every snapshot.* metric is a
	// pure function of the data and the sizing knobs — shard boundaries
	// never depend on Workers — so they are part of the byte-stable set.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.CertsPerShard <= 0 {
		o.CertsPerShard = 2048
	}
	if o.ScansPerShard <= 0 {
		o.ScansPerShard = 4
	}
	return o
}

// shardRange is one shard's slice of the certificate table or scan series.
type shardRange struct{ first, count int }

// shardRanges cuts n items into fixed-size shards. Boundaries depend only on
// n and per — never on the worker count — so file bytes stay deterministic.
func shardRanges(n, per int) []shardRange {
	if n <= 0 {
		return nil
	}
	ranges := make([]shardRange, 0, (n+per-1)/per)
	for lo := 0; lo < n; lo += per {
		c := per
		if lo+c > n {
			c = n - lo
		}
		ranges = append(ranges, shardRange{first: lo, count: c})
	}
	return ranges
}

// forEachShard runs fn over shard indices on the bounded worker pool.
func forEachShard(workers, n int, fn func(i int)) {
	parallel.ForEach(workers, n, fn)
}
