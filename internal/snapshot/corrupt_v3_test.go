package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"strings"
	"testing"
)

// validV3 returns encoded v3 bytes for a small multi-shard corpus with all
// five index sections populated.
func validV3(tb testing.TB) []byte {
	c := testCorpus(tb, 20, 4, 30)
	return encodeV3(tb, c, Options{CertsPerShard: 8, ScansPerShard: 2, ASOf: testASOf})
}

// patchV3Header applies modify to the fixed header, shard table and index
// table, then recomputes the header checksum so corruption tests reach the
// field checks behind it.
func patchV3Header(tb testing.TB, snap []byte, modify func(fixed, table, itable []byte)) []byte {
	tb.Helper()
	out := append([]byte(nil), snap...)
	fixed := out[:headerFixedV3]
	certShards := binary.LittleEndian.Uint32(fixed[32:])
	scanShards := binary.LittleEndian.Uint32(fixed[36:])
	tableLen := int(certShards+scanShards) * tableEntry
	table := out[headerFixedV3 : headerFixedV3+tableLen]
	itable := out[headerFixedV3+tableLen : headerFixedV3+tableLen+V3SectionCount*idxTableEntry]
	modify(fixed, table, itable)
	sum := sha256.New()
	sum.Write(fixed)
	sum.Write(table)
	sum.Write(itable)
	copy(out[headerFixedV3+tableLen+len(itable):], sum.Sum(nil))
	return out
}

// patchV3Section mutates one index section's bytes in place, then recomputes
// the section checksum and the header checksum so only the structural (or
// rebuild-compare) validation can reject the result — the shape a random
// bit-flip can never produce.
func patchV3Section(tb testing.TB, snap []byte, sec int, modify func(keys, post []byte)) []byte {
	tb.Helper()
	lay, err := ReadV3Layout(bytes.NewReader(snap), int64(len(snap)))
	if err != nil {
		tb.Fatal(err)
	}
	out := append([]byte(nil), snap...)
	s := lay.Sections[sec]
	keys := out[s.KeysOff : s.KeysOff+s.KeysLen()]
	post := out[s.PostOff : s.PostOff+int64(s.PostLen)]
	modify(keys, post)
	sum := sha256SectionSum(keys, post)
	nShards := int(lay.CertShards + lay.ScanShards)
	itableOff := headerFixedV3 + nShards*tableEntry
	copy(out[itableOff+sec*idxTableEntry+32:], sum[:])
	head := sha256.New()
	head.Write(out[:itableOff+V3SectionCount*idxTableEntry])
	copy(out[itableOff+V3SectionCount*idxTableEntry:], head.Sum(nil))
	return out
}

// Every corrupted v3 input must produce an explicit error — no panic, no
// out-of-bounds section read, never a silently wrong corpus. The same bytes
// are pushed through both the streaming reader (Read) and the random-access
// layout parser (ReadV3Layout + ValidateSection) that internal/querystore
// uses, since a hostile file reaches both.
func TestReadCorruptV3(t *testing.T) {
	snap := validV3(t)
	lay, err := ReadV3Layout(bytes.NewReader(snap), int64(len(snap)))
	if err != nil {
		t.Fatal(err)
	}
	nShards := int(lay.CertShards + lay.ScanShards)
	tableLen := nShards * tableEntry

	cases := []struct {
		name    string
		input   []byte
		wantSub string // substring the error must mention, "" for any error
	}{
		{"truncated fixed header", snap[:30], "truncated header"},
		{"truncated index table", snap[:headerFixedV3+tableLen+10], "truncated index table"},
		{"truncated header checksum", snap[:headerFixedV3+tableLen+V3SectionCount*idxTableEntry+5], "truncated header checksum"},
		{"truncated last section", snap[:len(snap)-10], "truncated"},
		{"truncated at payloads", snap[:int(lay.Shards[0].Off)+8], "truncated"},
		{"trailing garbage", append(append([]byte(nil), snap...), 0xff), "trailing bytes"},
		{"flipped header bit", flipByte(snap, headerFixedV3+tableLen+4), "header checksum mismatch"},
		{"flipped section byte", flipByte(snap, int(lay.Sections[0].KeysOff)+2), "checksum mismatch"},
		{"non-zero padding", nonZeroPad(t, snap, lay), "padding"},
		{
			"wrong section count",
			patchV3Header(t, snap, func(fixed, table, itable []byte) {
				binary.LittleEndian.PutUint32(fixed[40:], 4)
			}),
			"index sections",
		},
		{
			"reserved header field",
			patchV3Header(t, snap, func(fixed, table, itable []byte) {
				binary.LittleEndian.PutUint32(fixed[44:], 7)
			}),
			"reserved",
		},
		{
			"fingerprint key count mismatch",
			patchV3Header(t, snap, func(fixed, table, itable []byte) {
				binary.LittleEndian.PutUint64(itable[8:], lay.CertCount+1)
			}),
			"fingerprint index",
		},
		{
			"wrong section kind",
			patchV3Header(t, snap, func(fixed, table, itable []byte) {
				binary.LittleEndian.PutUint32(itable[0:], uint32(V3KindSPKI))
			}),
			"kind",
		},
		{
			"absurd posting length",
			patchV3Header(t, snap, func(fixed, table, itable []byte) {
				binary.LittleEndian.PutUint64(itable[idxTableEntry+16:], maxIndexBytes+8)
			}),
			"cap",
		},
		{
			"unsorted fingerprint keys",
			patchV3Section(t, snap, 0, func(keys, post []byte) {
				tmp := make([]byte, V3FPEntry)
				copy(tmp, keys[:V3FPEntry])
				copy(keys[:V3FPEntry], keys[V3FPEntry:2*V3FPEntry])
				copy(keys[V3FPEntry:2*V3FPEntry], tmp)
			}),
			"unsorted",
		},
		{
			"DER offset outside shard",
			patchV3Section(t, snap, 0, func(keys, post []byte) {
				binary.LittleEndian.PutUint32(keys[36:], 1<<29) // first key's derOff
			}),
			"outside shard",
		},
		{
			"fingerprint entry reserved field",
			patchV3Section(t, snap, 0, func(keys, post []byte) {
				keys[44] = 1
			}),
			"reserved",
		},
		{
			"overlapping SPKI posting groups",
			patchV3Section(t, snap, 1, func(keys, post []byte) {
				// Second key re-reads the first group: offsets must tile.
				binary.LittleEndian.PutUint32(keys[V3SPKIEntry+32:], 0)
			}),
			"postings start at",
		},
		{
			"IP posting ref out of range",
			patchV3Section(t, snap, 2, func(keys, post []byte) {
				binary.LittleEndian.PutUint32(post[4:], uint32(lay.CertCount)+5)
			}),
			"references cert",
		},
		{
			"scan metadata absurd nanoseconds",
			patchV3Section(t, snap, 4, func(keys, post []byte) {
				binary.LittleEndian.PutUint32(keys[4:], 2_000_000_000)
			}),
			"nanoseconds",
		},
		{
			"scan metadata observation total",
			patchV3Section(t, snap, 4, func(keys, post []byte) {
				n := binary.LittleEndian.Uint32(keys[16:])
				binary.LittleEndian.PutUint32(keys[16:], n+1)
			}),
			"observations",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, workers := range []int{1, 4} {
				_, err := Read(bytes.NewReader(tc.input), Options{Workers: workers})
				if err == nil {
					t.Fatalf("corrupt input accepted (workers=%d)", workers)
				}
				if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
					t.Fatalf("error %q does not mention %q", err, tc.wantSub)
				}
			}
			// The random-access path must reject the same bytes at open —
			// except padding corruption, which lives outside the sections
			// and is harmless to (because never read by) that path.
			if tc.name != "non-zero padding" {
				if err := validateV3Random(tc.input); err == nil {
					t.Fatal("corrupt input accepted by random-access validation")
				}
			}
		})
	}
}

// validateV3Random mimics internal/querystore's open path: parse the layout,
// slice each section, validate structurally.
func validateV3Random(snap []byte) error {
	lay, err := ReadV3Layout(bytes.NewReader(snap), int64(len(snap)))
	if err != nil {
		return err
	}
	for i, s := range lay.Sections {
		if s.KeysOff+s.KeysLen() > int64(len(snap)) || s.PostOff+int64(s.PostLen) > int64(len(snap)) {
			return fmt.Errorf("section %d extends past the file", i)
		}
		keys := snap[s.KeysOff : s.KeysOff+s.KeysLen()]
		post := snap[s.PostOff : s.PostOff+int64(s.PostLen)]
		if err := lay.ValidateSection(i, keys, post); err != nil {
			return err
		}
	}
	return nil
}

// A structurally valid file whose indexes lie about the payloads must be
// rejected by the streaming reader's rebuild-compare — the corruption class
// checksums cannot catch because the forger recomputed them.
func TestReadV3IndexDisagreesWithPayloads(t *testing.T) {
	snap := validV3(t)
	// Flip scan 0's operator in the scan-metadata section: structurally
	// valid (0 and 1 are both real operators), checksummed, but wrong.
	forged := patchV3Section(t, snap, 4, func(keys, post []byte) {
		op := binary.LittleEndian.Uint32(keys[0:])
		binary.LittleEndian.PutUint32(keys[0:], 1-op)
	})
	if err := validateV3Random(forged); err != nil {
		t.Fatalf("forged section should pass structural validation, got: %v", err)
	}
	_, err := Read(bytes.NewReader(forged), Options{})
	if err == nil {
		t.Fatal("index/payload disagreement accepted")
	}
	if !strings.Contains(err.Error(), "does not match the decoded corpus") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// nonZeroPad flips a padding byte between the shard payloads and the first
// index section (the corpus geometry guarantees at least one pad byte is not
// present in every build, so find one; skip-free fallback corrupts the gap
// after a section instead).
func nonZeroPad(tb testing.TB, snap []byte, lay *V3Layout) []byte {
	tb.Helper()
	last := lay.Shards[len(lay.Shards)-1]
	end := last.Off + int64(last.CompLen)
	if pad8(end) == 0 {
		// Fall back to the pad after the fingerprint section's keys+post.
		s := lay.Sections[0]
		end = s.PostOff + int64(s.PostLen)
		if pad8(end) == 0 {
			tb.Skip("no padding bytes in this geometry")
		}
	}
	out := append([]byte(nil), snap...)
	out[end] = 0xcc
	return out
}
