package snapshot

import (
	"bytes"
	"testing"

	"securepki/internal/scanstore"
	"securepki/internal/x509lite"
)

// streamEncode replays a corpus through the StreamWriter: certificates
// interned in corpus ID order, then every scan's observations in order —
// exactly the event stream the in-memory writer serialises.
func streamEncode(tb testing.TB, c *scanstore.Corpus, opt Options, cfg StreamWriterConfig) []byte {
	tb.Helper()
	sw, err := NewStreamWriter(opt, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	defer sw.Close()
	for i := 0; i < c.NumCerts(); i++ {
		cert := c.Cert(scanstore.CertID(i)).Cert
		id, fresh, err := sw.Intern(cert.Raw, cert.Fingerprint(), cert.PublicKeyFingerprint())
		if err != nil {
			tb.Fatal(err)
		}
		if !fresh || int(id) != i {
			tb.Fatalf("intern %d: got id %d fresh=%v", i, id, fresh)
		}
	}
	for s := 0; s < c.NumScans(); s++ {
		scan := c.Scan(scanstore.ScanID(s))
		if err := sw.BeginScan(scan.Operator, scan.Time); err != nil {
			tb.Fatal(err)
		}
		for _, o := range scan.Obs {
			if err := sw.AddObs(o.Cert, o.IP); err != nil {
				tb.Fatal(err)
			}
		}
	}
	var buf bytes.Buffer
	if err := sw.Finish(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamWriterMatchesV2 demands the streaming writer's v2 output be
// byte-identical to Write's over the same corpus, across shard sizings that
// land partial and exact shard boundaries.
func TestStreamWriterMatchesV2(t *testing.T) {
	c := testCorpus(t, 300, 9, 500)
	for _, opt := range []Options{
		{},
		{CertsPerShard: 64, ScansPerShard: 2},
		{CertsPerShard: 300, ScansPerShard: 9}, // exact boundaries
		{CertsPerShard: 1, ScansPerShard: 1},
	} {
		want := encodeV2(t, c, opt)
		got := streamEncode(t, c, opt, StreamWriterConfig{SpillDir: t.TempDir()})
		if !bytes.Equal(want, got) {
			t.Fatalf("CertsPerShard=%d ScansPerShard=%d: streaming v2 differs from Write (%d vs %d bytes)",
				opt.CertsPerShard, opt.ScansPerShard, len(want), len(got))
		}
	}
}

// TestStreamWriterMatchesV3 does the same for the indexed format, AS view
// included, with the column spill threshold crushed so every observation
// column and both posting arrays take the disk path.
func TestStreamWriterMatchesV3(t *testing.T) {
	old := colSpillThreshold
	colSpillThreshold = 64
	defer func() { colSpillThreshold = old }()

	c := testCorpus(t, 300, 9, 500)
	for _, opt := range []Options{
		{ASOf: testASOf},
		{ASOf: testASOf, CertsPerShard: 64, ScansPerShard: 2},
		{CertsPerShard: 64, ScansPerShard: 2}, // no AS view: empty AS section
	} {
		var want bytes.Buffer
		if err := WriteV3(&want, c, opt); err != nil {
			t.Fatal(err)
		}
		got := streamEncode(t, c, opt, StreamWriterConfig{
			SpillDir:  t.TempDir(),
			MemBudget: 1 << 16, // force sorter spill runs
			V3:        true,
		})
		if !bytes.Equal(want.Bytes(), got) {
			t.Fatalf("ASOf=%v: streaming v3 differs from WriteV3 (%d vs %d bytes)",
				opt.ASOf != nil, want.Len(), len(got))
		}
		// The output must actually parse.
		if _, err := ReadV3Layout(bytes.NewReader(got), int64(len(got))); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStreamWriterEmpty pins the degenerate corpus: no certs, no scans.
func TestStreamWriterEmpty(t *testing.T) {
	c := scanstore.NewCorpus()
	for _, v3 := range []bool{false, true} {
		var want bytes.Buffer
		var err error
		if v3 {
			err = WriteV3(&want, c, Options{})
		} else {
			err = Write(&want, c, Options{})
		}
		if err != nil {
			t.Fatal(err)
		}
		got := streamEncode(t, c, Options{}, StreamWriterConfig{SpillDir: t.TempDir(), V3: v3})
		if !bytes.Equal(want.Bytes(), got) {
			t.Fatalf("v3=%v: empty streaming snapshot differs from in-memory", v3)
		}
	}
}

// TestStreamWriterEachCert checks DER retention: every interned certificate
// replays in ID order with its exact bytes and digests.
func TestStreamWriterEachCert(t *testing.T) {
	c := testCorpus(t, 40, 2, 50)
	sw, err := NewStreamWriter(Options{}, StreamWriterConfig{SpillDir: t.TempDir(), KeepDERs: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	for i := 0; i < c.NumCerts(); i++ {
		cert := c.Cert(scanstore.CertID(i)).Cert
		if _, _, err := sw.Intern(cert.Raw, cert.Fingerprint(), cert.PublicKeyFingerprint()); err != nil {
			t.Fatal(err)
		}
	}
	next := 0
	err = sw.EachCert(func(id scanstore.CertID, fp, spki x509lite.Fingerprint, der []byte) error {
		cert := c.Cert(id).Cert
		if int(id) != next {
			t.Fatalf("EachCert out of order: got %d, want %d", id, next)
		}
		next++
		if !bytes.Equal(der, cert.Raw) || fp != cert.Fingerprint() || spki != cert.PublicKeyFingerprint() {
			t.Fatalf("EachCert %d: payload mismatch", id)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != c.NumCerts() {
		t.Fatalf("EachCert visited %d of %d certs", next, c.NumCerts())
	}
}

// TestStreamWriterInternDedups pins the dedup contract: re-interning a
// fingerprint returns the original ID without growing the table.
func TestStreamWriterInternDedups(t *testing.T) {
	c := testCorpus(t, 3, 1, 3)
	sw, err := NewStreamWriter(Options{}, StreamWriterConfig{SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	cert := c.Cert(0).Cert
	id0, fresh, err := sw.Intern(cert.Raw, cert.Fingerprint(), cert.PublicKeyFingerprint())
	if err != nil || !fresh {
		t.Fatalf("first intern: id=%d fresh=%v err=%v", id0, fresh, err)
	}
	id1, fresh, err := sw.Intern(cert.Raw, cert.Fingerprint(), cert.PublicKeyFingerprint())
	if err != nil || fresh || id1 != id0 {
		t.Fatalf("re-intern: id=%d fresh=%v err=%v", id1, fresh, err)
	}
	if sw.NumCerts() != 1 {
		t.Fatalf("NumCerts %d after dedup", sw.NumCerts())
	}
}

// TestStreamCorpusMatchesWrite pins the StreamCorpus convenience to the
// one-shot writers, v2 and v3, under a spill-forcing budget.
func TestStreamCorpusMatchesWrite(t *testing.T) {
	c := testCorpus(t, 120, 5, 80)
	cfg := StreamWriterConfig{SpillDir: t.TempDir(), MemBudget: 1 << 14}

	var got bytes.Buffer
	if err := StreamCorpus(&got, c, Options{}, cfg); err != nil {
		t.Fatal(err)
	}
	if want := encodeV2(t, c, Options{}); !bytes.Equal(want, got.Bytes()) {
		t.Fatal("StreamCorpus v2 differs from Write")
	}

	opt := Options{ASOf: testASOf}
	var wantV3 bytes.Buffer
	if err := WriteV3(&wantV3, c, opt); err != nil {
		t.Fatal(err)
	}
	cfg.V3 = true
	got.Reset()
	if err := StreamCorpus(&got, c, opt, cfg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantV3.Bytes(), got.Bytes()) {
		t.Fatal("StreamCorpus v3 differs from WriteV3")
	}
}
