package snapshot

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"

	"securepki/internal/scanstore"
)

// readV3 loads a complete corpus from a v3 stream. The payload decode is
// exactly v2's; the appended index sections are then held to a stricter
// standard than structural validity: the loader rebuilds the deterministic
// sections (fingerprint, SPKI, IP, scan metadata) from the decoded corpus
// and demands byte equality, so a v3 file whose indexes disagree with its
// own payloads is rejected outright. The AS section cannot be rebuilt (the
// writer's network view is not in the file), so it gets the full structural
// validation instead.
func readV3(r io.Reader, opt Options) (*scanstore.Corpus, error) {
	fixed := make([]byte, headerFixedV3)
	if _, err := io.ReadFull(r, fixed[:8]); err != nil {
		return nil, fmt.Errorf("snapshot: truncated header: %w", err)
	}
	if string(fixed[:8]) != MagicV3 {
		return nil, fmt.Errorf("snapshot: bad magic %q", fixed[:8])
	}
	if _, err := io.ReadFull(r, fixed[8:]); err != nil {
		return nil, fmt.Errorf("snapshot: truncated header: %w", err)
	}
	lay, nShards, err := parseV3Fixed(fixed)
	if err != nil {
		return nil, err
	}

	table := make([]byte, nShards*tableEntry)
	if _, err := io.ReadFull(r, table); err != nil {
		return nil, fmt.Errorf("snapshot: truncated shard table: %w", err)
	}
	itable := make([]byte, V3SectionCount*idxTableEntry)
	if _, err := io.ReadFull(r, itable); err != nil {
		return nil, fmt.Errorf("snapshot: truncated index table: %w", err)
	}
	var wantHeadSum [32]byte
	if _, err := io.ReadFull(r, wantHeadSum[:]); err != nil {
		return nil, fmt.Errorf("snapshot: truncated header checksum: %w", err)
	}
	h := sha256.New()
	h.Write(fixed)
	h.Write(table)
	h.Write(itable)
	if !bytes.Equal(h.Sum(nil), wantHeadSum[:]) {
		return nil, fmt.Errorf("snapshot: header checksum mismatch")
	}
	if err := parseV3Tables(lay, table, itable); err != nil {
		return nil, err
	}

	// Shard payloads, decoded exactly like v2.
	metas := make([]shardMeta, len(lay.Shards))
	sums := make([][32]byte, len(lay.Shards))
	comps := make([][]byte, len(lay.Shards))
	off := int64(headerFixedV3) + int64(len(table)) + int64(len(itable)) + 32
	for i, sh := range lay.Shards {
		metas[i] = shardMeta{first: sh.First, count: sh.Count, rawLen: sh.RawLen, compLen: sh.CompLen}
		sums[i] = sh.Sum
		comp, err := readPayload(r, sh.CompLen)
		if err != nil {
			return nil, fmt.Errorf("snapshot: shard %d payload: %w", i, err)
		}
		comps[i] = comp
		off += int64(sh.CompLen)
	}
	certParts, scanParts, err := decodeShards(metas, sums, comps, lay.CertShards, lay.CertCount, opt)
	if err != nil {
		return nil, err
	}

	// Index sections, with the alignment padding verified to be zeros.
	if err := readPadZeros(r, pad8(off)); err != nil {
		return nil, err
	}
	off += pad8(off)
	var indexBytes int64
	sections := make([][2][]byte, V3SectionCount)
	for i := range lay.Sections {
		sec := lay.Sections[i]
		keys, err := readPayload(r, uint64(sec.KeysLen()))
		if err != nil {
			return nil, fmt.Errorf("snapshot: index section %d keys: %w", i, err)
		}
		post, err := readPayload(r, sec.PostLen)
		if err != nil {
			return nil, fmt.Errorf("snapshot: index section %d postings: %w", i, err)
		}
		off += sec.KeysLen() + int64(sec.PostLen)
		if err := readPadZeros(r, pad8(off)); err != nil {
			return nil, err
		}
		off += pad8(off)
		sections[i] = [2][]byte{keys, post}
		indexBytes += int64(len(keys)) + int64(len(post))
	}
	var trail [1]byte
	if n, _ := r.Read(trail[:]); n != 0 {
		return nil, fmt.Errorf("snapshot: trailing bytes after last index section")
	}
	for i := range sections {
		if err := lay.ValidateSection(i, sections[i][0], sections[i][1]); err != nil {
			return nil, err
		}
	}

	c, err := assembleCorpus(certParts, scanParts, lay.ObsCount)
	if err != nil {
		return nil, err
	}

	// Rebuild the corpus-determined sections with the file's own shard
	// geometry and insist on byte equality.
	certRanges := make([]shardRange, lay.CertShards)
	for i := range certRanges {
		sh := lay.Shards[i]
		certRanges[i] = shardRange{first: int(sh.First), count: int(sh.Count)}
	}
	rebuilt, err := buildV3Sections(c, certRanges, Options{Workers: opt.Workers})
	if err != nil {
		return nil, fmt.Errorf("snapshot: rebuild indexes: %w", err)
	}
	for _, i := range []int{0, 1, 2, 4} { // fp, spki, ip, scanmeta; as is writer-dependent
		if !bytes.Equal(sections[i][0], rebuilt[i].keys) || !bytes.Equal(sections[i][1], rebuilt[i].post) {
			return nil, fmt.Errorf("snapshot: index section %d does not match the decoded corpus", i)
		}
	}

	opt.Obs.Counter("snapshot.decode.v3").Inc()
	opt.Obs.Counter("snapshot.decode.index_bytes").Add(indexBytes)
	opt.Obs.Counter("snapshot.decode.shards").Add(int64(nShards))
	opt.Obs.Counter("snapshot.decode.certs").Add(int64(lay.CertCount))
	opt.Obs.Counter("snapshot.decode.scans").Add(int64(lay.ScanCount))
	opt.Obs.Counter("snapshot.decode.observations").Add(int64(lay.ObsCount))
	return c, nil
}

// readPadZeros consumes n alignment bytes and rejects any non-zero filler —
// padding is not a place to smuggle bytes past the checksums.
func readPadZeros(r io.Reader, n int64) error {
	if n == 0 {
		return nil
	}
	var pad [8]byte
	if _, err := io.ReadFull(r, pad[:n]); err != nil {
		return fmt.Errorf("snapshot: truncated padding: %w", err)
	}
	for _, b := range pad[:n] {
		if b != 0 {
			return fmt.Errorf("snapshot: non-zero padding byte")
		}
	}
	return nil
}
