package snapshot

import (
	"bytes"
	"testing"

	"securepki/internal/obs"
)

// TestCodecMetricsDeterministic: the snapshot.* metrics a round trip
// records are byte-identical at any worker count — shard boundaries are
// fixed by data, so per-shard byte counts and ratios never move.
func TestCodecMetricsDeterministic(t *testing.T) {
	c := testCorpus(t, 90, 7, 120)
	render := func(workers int) []byte {
		reg := obs.NewRegistry()
		opt := Options{Workers: workers, CertsPerShard: 16, ScansPerShard: 2, VerifyDigests: true, Obs: reg}
		data := encodeV2(t, c, opt)
		got, err := Read(bytes.NewReader(data), opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		corpusEqual(t, c, got)
		return reg.Snapshot().EncodeJSON()
	}
	want := render(1)
	for _, workers := range []int{4, 16} {
		if got := render(workers); !bytes.Equal(got, want) {
			t.Fatalf("metrics differ at workers=%d:\n%s\nwant:\n%s", workers, got, want)
		}
	}
	if err := obs.ValidateMetrics(want); err != nil {
		t.Fatalf("codec metrics fail schema: %v", err)
	}
}

// TestCodecMetricsCounts spot-checks the counter semantics: encode and
// decode agree on bytes, digest verifies cover every certificate, and the
// v1 path marks itself.
func TestCodecMetricsCounts(t *testing.T) {
	c := testCorpus(t, 40, 5, 60)
	reg := obs.NewRegistry()
	opt := Options{CertsPerShard: 16, ScansPerShard: 2, VerifyDigests: true, Obs: reg}
	data := encodeV2(t, c, opt)
	if _, err := Read(bytes.NewReader(data), opt); err != nil {
		t.Fatal(err)
	}
	if enc, dec := reg.Counter("snapshot.encode.raw_bytes").Value(), reg.Counter("snapshot.decode.raw_bytes").Value(); enc != dec || enc == 0 {
		t.Fatalf("raw bytes: encode %d, decode %d", enc, dec)
	}
	if enc, dec := reg.Counter("snapshot.encode.comp_bytes").Value(), reg.Counter("snapshot.decode.comp_bytes").Value(); enc != dec || enc == 0 {
		t.Fatalf("comp bytes: encode %d, decode %d", enc, dec)
	}
	if got := reg.Counter("snapshot.decode.digest_verify").Value(); got != 40 {
		t.Fatalf("digest_verify = %d, want 40", got)
	}
	if got := reg.Counter("snapshot.decode.certs").Value(); got != 40 {
		t.Fatalf("decode.certs = %d, want 40", got)
	}

	// The v1 path is counted, not shard-metered.
	var v1 bytes.Buffer
	if err := c.Write(&v1); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(v1.Bytes()), opt); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("snapshot.decode.v1").Value(); got != 1 {
		t.Fatalf("decode.v1 = %d, want 1", got)
	}
}
