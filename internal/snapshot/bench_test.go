package snapshot

import (
	"bytes"
	"io"
	"runtime"
	"sync"
	"testing"

	"securepki/internal/obs"
	"securepki/internal/scanstore"
)

// The default bench corpus mirrors the paper's shape in miniature:
// observation-heavy (most scan rows are repeat sightings of already-known
// certificates — the corpus has ~48M hosts per scan against 8.6M distinct
// certificates overall), with scans from both operators.
const (
	benchCerts  = 2000
	benchScans  = 60
	benchObsPer = 2000 // 120k observations, 60:1 obs:cert
)

var benchState struct {
	once sync.Once
	c    *scanstore.Corpus
	v1   []byte
	v2   []byte
	v3   []byte
}

func benchCorpus(tb testing.TB) (*scanstore.Corpus, []byte, []byte) {
	benchState.once.Do(func() {
		benchState.c = testCorpus(tb, benchCerts, benchScans, benchObsPer)
		var v1 bytes.Buffer
		if err := benchState.c.Write(&v1); err != nil {
			tb.Fatal(err)
		}
		benchState.v1 = v1.Bytes()
		var v2 bytes.Buffer
		if err := Write(&v2, benchState.c, Options{}); err != nil {
			tb.Fatal(err)
		}
		benchState.v2 = v2.Bytes()
		var v3 bytes.Buffer
		if err := WriteV3(&v3, benchState.c, Options{ASOf: testASOf}); err != nil {
			tb.Fatal(err)
		}
		benchState.v3 = v3.Bytes()
	})
	return benchState.c, benchState.v1, benchState.v2
}

func benchCorpusV3(tb testing.TB) (*scanstore.Corpus, []byte) {
	c, _, _ := benchCorpus(tb)
	return c, benchState.v3
}

func reportCorpusRates(b *testing.B) {
	secs := b.Elapsed().Seconds()
	if secs == 0 {
		return
	}
	b.ReportMetric(float64(b.N)*benchCerts/secs, "certs/sec")
	b.ReportMetric(float64(b.N)*benchScans*benchObsPer/secs, "obs/sec")
	// Peak RSS rides along next to the throughput rates so BENCH_snapshot.json
	// tracks the memory envelope release over release. getrusage's high-water
	// is process-lifetime monotone, so the number reflects the heaviest
	// benchmark run so far in this process, not this sub-benchmark alone.
	if rss, ok := obs.PeakRSS(); ok {
		b.ReportMetric(float64(rss), "peak-rss-B")
	}
}

func BenchmarkSnapshotWrite(b *testing.B) {
	c, v1, v2 := benchCorpus(b)
	b.Run("v1-gob", func(b *testing.B) {
		b.SetBytes(int64(len(v1)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.Write(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
		reportCorpusRates(b)
	})
	b.Run("v2", func(b *testing.B) {
		b.SetBytes(int64(len(v2)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := Write(io.Discard, c, Options{Workers: runtime.GOMAXPROCS(0)}); err != nil {
				b.Fatal(err)
			}
		}
		reportCorpusRates(b)
	})
	b.Run("v3", func(b *testing.B) {
		_, v3 := benchCorpusV3(b)
		b.SetBytes(int64(len(v3)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := WriteV3(io.Discard, c, Options{Workers: runtime.GOMAXPROCS(0), ASOf: testASOf}); err != nil {
				b.Fatal(err)
			}
		}
		reportCorpusRates(b)
	})
}

func BenchmarkSnapshotRead(b *testing.B) {
	_, v1, v2 := benchCorpus(b)
	run := func(name string, data []byte, workers int) {
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := Read(bytes.NewReader(data), Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if c.NumCerts() != benchCerts {
					b.Fatal("bad corpus")
				}
			}
			reportCorpusRates(b)
		})
	}
	run("v1-gob", v1, 1)
	run("v2-serial", v2, 1)
	run("v2-parallel", v2, runtime.GOMAXPROCS(0))
	_, v3 := benchCorpusV3(b)
	run("v3-serial", v3, 1)
	run("v3-parallel", v3, runtime.GOMAXPROCS(0))
}
