package snapshot

import (
	"bytes"
	"encoding/binary"
	"sort"
	"testing"
	"time"

	"securepki/internal/netsim"
	"securepki/internal/scanstore"
	"securepki/internal/x509lite"
)

// testASOf is the deterministic AS view the v3 tests write with: /8 prefixes
// map straight to AS numbers, and one prefix is deliberately unrouted so the
// not-found branch is exercised.
func testASOf(ip netsim.IP, _ time.Time) (int, bool) {
	if uint32(ip)>>24 == 10 {
		return 64512 + int(uint32(ip)>>16&0xff)%7, true
	}
	if uint32(ip)>>24 == 192 {
		return 0, false // unrouted
	}
	return 65000, true
}

func encodeV3(tb testing.TB, c *scanstore.Corpus, opt Options) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := WriteV3(&buf, c, opt); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func TestV3RoundTrip(t *testing.T) {
	c := testCorpus(t, 150, 11, 400)
	raw := encodeV3(t, c, Options{CertsPerShard: 64, ScansPerShard: 3, ASOf: testASOf})
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"serial", Options{Workers: 1}},
		{"parallel", Options{Workers: 8}},
		{"verify-digests", Options{Workers: 4, VerifyDigests: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Read(bytes.NewReader(raw), tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			corpusEqual(t, c, got)
		})
	}
}

func TestV3RoundTripEmpty(t *testing.T) {
	got, err := Read(bytes.NewReader(encodeV3(t, scanstore.NewCorpus(), Options{})), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumCerts() != 0 || got.NumScans() != 0 {
		t.Fatalf("want empty corpus, got %d certs, %d scans", got.NumCerts(), got.NumScans())
	}
}

func TestV3RoundTripSparse(t *testing.T) {
	c := testCorpus(t, 10, 0, 0)
	base := time.Date(2013, 6, 1, 0, 0, 0, 0, time.UTC)
	if _, err := c.AddScan(scanstore.UMich, base, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddScan(scanstore.Rapid7, base.AddDate(0, 0, 1),
		[]scanstore.Observation{{Cert: 3, IP: 42}}); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(encodeV3(t, c, Options{ASOf: testASOf})), Options{})
	if err != nil {
		t.Fatal(err)
	}
	corpusEqual(t, c, got)
}

// The acceptance bar: v3 bytes are identical at workers 1, 4 and 16, with
// and without an AS view.
func TestV3WriteDeterministicAcrossWorkers(t *testing.T) {
	c := testCorpus(t, 90, 7, 120)
	for _, asof := range []struct {
		name string
		fn   func(netsim.IP, time.Time) (int, bool)
	}{{"no-as", nil}, {"as", testASOf}} {
		t.Run(asof.name, func(t *testing.T) {
			var ref []byte
			for _, workers := range []int{1, 4, 16} {
				raw := encodeV3(t, c, Options{Workers: workers, CertsPerShard: 32, ScansPerShard: 2, ASOf: asof.fn})
				if ref == nil {
					ref = raw
					continue
				}
				if !bytes.Equal(ref, raw) {
					t.Fatalf("Workers=%d produced different bytes than Workers=1", workers)
				}
			}
		})
	}
}

// A v3 file's payload region must be byte-identical to the v2 encoding of
// the same corpus: v3 is v2 plus indexes, not a fork.
func TestV3PayloadsMatchV2(t *testing.T) {
	c := testCorpus(t, 70, 5, 90)
	opt := Options{CertsPerShard: 32, ScansPerShard: 2}
	v2 := encodeV2(t, c, opt)
	v3 := encodeV3(t, c, opt)
	lay, err := ReadV3Layout(bytes.NewReader(v3), int64(len(v3)))
	if err != nil {
		t.Fatal(err)
	}
	// v2 payloads start after its header; compare each shard's bytes.
	v2off := int64(headerFixed) + int64(len(lay.Shards))*tableEntry + 32
	for i, sh := range lay.Shards {
		v3comp := v3[sh.Off : sh.Off+int64(sh.CompLen)]
		v2comp := v2[v2off : v2off+int64(sh.CompLen)]
		if !bytes.Equal(v3comp, v2comp) {
			t.Fatalf("shard %d payload differs between v2 and v3", i)
		}
		v2off += int64(sh.CompLen)
	}
	if v2off != int64(len(v2)) {
		t.Fatalf("v2 shard walk covered %d of %d bytes", v2off, len(v2))
	}
}

// v3Sections reads and validates every index section of an encoded v3 file,
// returning the layout and the per-section (keys, postings) bytes.
func v3Sections(tb testing.TB, raw []byte) (*V3Layout, [V3SectionCount][2][]byte) {
	tb.Helper()
	lay, err := ReadV3Layout(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		tb.Fatal(err)
	}
	var out [V3SectionCount][2][]byte
	for i, sec := range lay.Sections {
		keys := raw[sec.KeysOff : sec.KeysOff+sec.KeysLen()]
		post := raw[sec.PostOff : sec.PostOff+int64(sec.PostLen)]
		if err := lay.ValidateSection(i, keys, post); err != nil {
			tb.Fatal(err)
		}
		out[i] = [2][]byte{keys, post}
	}
	return lay, out
}

// The golden test for the indexes: every answer the index sections encode
// must byte-match a brute-force scan over the corpus itself, for both serial
// and parallel index builds.
func TestV3IndexesMatchBruteForce(t *testing.T) {
	c := testCorpus(t, 120, 9, 300)
	for _, workers := range []int{1, 8} {
		raw := encodeV3(t, c, Options{Workers: workers, CertsPerShard: 50, ScansPerShard: 2, ASOf: testASOf})
		lay, secs := v3Sections(t, raw)

		// Fingerprint section: sorted fingerprints, and each (shard, off, len)
		// must slice the exact DER out of the decompressed shard payload.
		fpKeys := secs[0][0]
		n := int(lay.Sections[0].KeyCount)
		if n != c.NumCerts() {
			t.Fatalf("fp index has %d keys for %d certs", n, c.NumCerts())
		}
		shardRaws := make([][]byte, lay.CertShards)
		for i := range shardRaws {
			sh := lay.Shards[i]
			rawShard, err := sh.Inflate(raw[sh.Off : sh.Off+int64(sh.CompLen)])
			if err != nil {
				t.Fatal(err)
			}
			shardRaws[i] = rawShard
		}
		refToID := make([]scanstore.CertID, n) // certref → corpus CertID
		for k := 0; k < n; k++ {
			e := fpKeys[k*V3FPEntry:]
			var fp x509lite.Fingerprint
			copy(fp[:], e[:32])
			id, ok := c.Lookup(fp)
			if !ok {
				t.Fatalf("fp index key %d not in corpus", k)
			}
			refToID[k] = id
			shard := binary.LittleEndian.Uint32(e[32:])
			off := binary.LittleEndian.Uint32(e[36:])
			dlen := binary.LittleEndian.Uint32(e[40:])
			der := shardRaws[shard][off : off+dlen]
			if !bytes.Equal(der, c.Cert(id).Cert.Raw) {
				t.Fatalf("fp index key %d DER does not match cert %d", k, id)
			}
		}

		// SPKI section vs brute force over the cert table.
		wantSPKI := map[x509lite.Fingerprint][]uint32{}
		idToRef := make(map[scanstore.CertID]uint32, n)
		for ref, id := range refToID {
			idToRef[id] = uint32(ref)
		}
		for _, rec := range c.Certs() {
			k := rec.Cert.PublicKeyFingerprint()
			wantSPKI[k] = append(wantSPKI[k], idToRef[rec.ID])
		}
		spkiKeys, spkiPost := secs[1][0], secs[1][1]
		nk := int(lay.Sections[1].KeyCount)
		seen := 0
		for k := 0; k < nk; k++ {
			e := spkiKeys[k*V3SPKIEntry:]
			var spki x509lite.Fingerprint
			copy(spki[:], e[:32])
			off := binary.LittleEndian.Uint32(e[32:])
			cnt := binary.LittleEndian.Uint32(e[36:])
			want := append([]uint32(nil), wantSPKI[spki]...)
			sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
			if int(cnt) != len(want) {
				t.Fatalf("spki key %d has %d refs, brute force %d", k, cnt, len(want))
			}
			for j := uint32(0); j < cnt; j++ {
				if got := binary.LittleEndian.Uint32(spkiPost[(off+j)*4:]); got != want[j] {
					t.Fatalf("spki key %d ref %d: index %d, brute force %d", k, j, got, want[j])
				}
			}
			seen += int(cnt)
		}
		if seen != n {
			t.Fatalf("spki postings cover %d of %d certs", seen, n)
		}

		// IP section vs brute force over all observations.
		type sighting struct{ scan, ref uint32 }
		wantIP := map[uint32][]sighting{}
		for _, s := range c.Scans() {
			for _, o := range s.Obs {
				wantIP[uint32(o.IP)] = append(wantIP[uint32(o.IP)], sighting{uint32(s.ID), idToRef[o.Cert]})
			}
		}
		for ip := range wantIP {
			lst := wantIP[ip]
			sort.Slice(lst, func(a, b int) bool {
				if lst[a].scan != lst[b].scan {
					return lst[a].scan < lst[b].scan
				}
				return lst[a].ref < lst[b].ref
			})
			dedup := lst[:0]
			for i, sg := range lst {
				if i == 0 || sg != lst[i-1] {
					dedup = append(dedup, sg)
				}
			}
			wantIP[ip] = dedup
		}
		ipKeys, ipPost := secs[2][0], secs[2][1]
		nip := int(lay.Sections[2].KeyCount)
		if nip != len(wantIP) {
			t.Fatalf("ip index has %d keys, brute force %d", nip, len(wantIP))
		}
		for k := 0; k < nip; k++ {
			e := ipKeys[k*V3IPEntry:]
			ip := binary.LittleEndian.Uint32(e[0:])
			off := binary.LittleEndian.Uint32(e[4:])
			cnt := binary.LittleEndian.Uint32(e[8:])
			want := wantIP[ip]
			if int(cnt) != len(want) {
				t.Fatalf("ip %d has %d sightings, brute force %d", ip, cnt, len(want))
			}
			for j := uint32(0); j < cnt; j++ {
				scan := binary.LittleEndian.Uint32(ipPost[(off+j)*8:])
				ref := binary.LittleEndian.Uint32(ipPost[(off+j)*8+4:])
				if scan != want[j].scan || ref != want[j].ref {
					t.Fatalf("ip %d sighting %d: index (%d,%d), brute force (%d,%d)",
						ip, j, scan, ref, want[j].scan, want[j].ref)
				}
			}
		}

		// AS section vs brute force through the same ASOf.
		wantAS := map[uint32][]uint32{}
		for _, s := range c.Scans() {
			for _, o := range s.Obs {
				if asn, ok := testASOf(o.IP, s.Time); ok {
					wantAS[uint32(asn)] = append(wantAS[uint32(asn)], idToRef[o.Cert])
				}
			}
		}
		for asn := range wantAS {
			lst := wantAS[asn]
			sort.Slice(lst, func(a, b int) bool { return lst[a] < lst[b] })
			dedup := lst[:0]
			for i, r := range lst {
				if i == 0 || r != lst[i-1] {
					dedup = append(dedup, r)
				}
			}
			wantAS[asn] = dedup
		}
		asKeys, asPost := secs[3][0], secs[3][1]
		nas := int(lay.Sections[3].KeyCount)
		if nas != len(wantAS) {
			t.Fatalf("as index has %d keys, brute force %d", nas, len(wantAS))
		}
		for k := 0; k < nas; k++ {
			e := asKeys[k*V3ASEntry:]
			asn := binary.LittleEndian.Uint32(e[0:])
			off := binary.LittleEndian.Uint32(e[4:])
			cnt := binary.LittleEndian.Uint32(e[8:])
			want := wantAS[asn]
			if int(cnt) != len(want) {
				t.Fatalf("as %d has %d refs, brute force %d", asn, cnt, len(want))
			}
			for j := uint32(0); j < cnt; j++ {
				if got := binary.LittleEndian.Uint32(asPost[(off+j)*4:]); got != want[j] {
					t.Fatalf("as %d ref %d: index %d, brute force %d", asn, j, got, want[j])
				}
			}
		}

		// Scan metadata vs the corpus scans.
		metaKeys := secs[4][0]
		for i, s := range c.Scans() {
			m := ScanMetaAt(metaKeys, i)
			if m.Operator != uint32(s.Operator) || !m.Time.Equal(s.Time) || int(m.ObsCount) != len(s.Obs) {
				t.Fatalf("scan %d metadata %+v does not match corpus scan", i, m)
			}
		}
	}
}

// v1, v2 and v3 loads of the same corpus must answer Lookup identically for
// every fingerprint (plus a miss), the satellite pin for Corpus.Lookup.
func TestLookupAgreesAcrossFormats(t *testing.T) {
	c := testCorpus(t, 80, 6, 150)
	var v1 bytes.Buffer
	if err := c.Write(&v1); err != nil {
		t.Fatal(err)
	}
	loads := map[string][]byte{
		"v1": v1.Bytes(),
		"v2": encodeV2(t, c, Options{CertsPerShard: 33}),
		"v3": encodeV3(t, c, Options{CertsPerShard: 33, ASOf: testASOf}),
	}
	for name, raw := range loads {
		got, err := Read(bytes.NewReader(raw), Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, rec := range c.Certs() {
			fp := rec.Cert.Fingerprint()
			id, ok := got.Lookup(fp)
			if !ok || id != rec.ID {
				t.Fatalf("%s: Lookup(%s) = (%d, %v), want (%d, true)", name, fp, id, ok, rec.ID)
			}
		}
		if _, ok := got.Lookup(x509lite.FingerprintBytes([]byte("never interned"))); ok {
			t.Fatalf("%s: Lookup of absent fingerprint succeeded", name)
		}
	}
}
