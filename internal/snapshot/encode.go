package snapshot

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"

	"securepki/internal/scanstore"
)

// encodedShard is one compressed payload plus its table entry fields.
type encodedShard struct {
	first, count int
	rawLen       int
	comp         []byte
	sum          [32]byte
}

// Write serialises the corpus in the v2 sharded columnar format. Validation
// statuses are not persisted (run Validate after loading), matching the v1
// contract. Output bytes are identical for any opt.Workers value.
func Write(w io.Writer, c *scanstore.Corpus, opt Options) error {
	opt = opt.withDefaults()
	certs, scans, obsCount, certRanges, scanRanges, err := prepareWrite(c, opt)
	if err != nil {
		return err
	}

	shards, err := encodeShards(certs, scans, certRanges, scanRanges, opt)
	if err != nil {
		return err
	}
	opt.Obs.Counter("snapshot.encode.shards").Add(int64(len(shards)))
	opt.Obs.Counter("snapshot.encode.certs").Add(int64(len(certs)))
	opt.Obs.Counter("snapshot.encode.scans").Add(int64(len(scans)))
	opt.Obs.Counter("snapshot.encode.observations").Add(int64(obsCount))

	// Header + shard table, then its digest, then the payloads.
	var head bytes.Buffer
	head.WriteString(Magic)
	putU64(&head, uint64(len(certs)))
	putU64(&head, uint64(len(scans)))
	putU64(&head, obsCount)
	putU32(&head, uint32(len(certRanges)))
	putU32(&head, uint32(len(scanRanges)))
	for _, sh := range shards {
		putU64(&head, uint64(sh.first))
		putU64(&head, uint64(sh.count))
		putU64(&head, uint64(sh.rawLen))
		putU64(&head, uint64(len(sh.comp)))
		head.Write(sh.sum[:])
	}
	headSum := sha256.Sum256(head.Bytes())
	head.Write(headSum[:])
	if _, err := w.Write(head.Bytes()); err != nil {
		return fmt.Errorf("snapshot: write header: %w", err)
	}
	for i, sh := range shards {
		if _, err := w.Write(sh.comp); err != nil {
			return fmt.Errorf("snapshot: write shard %d: %w", i, err)
		}
	}
	return nil
}

// prepareWrite validates the corpus against the format caps and fixes the
// shard boundaries, identically for v2 and v3.
func prepareWrite(c *scanstore.Corpus, opt Options) (certs []*scanstore.CertRecord, scans []*scanstore.Scan, obsCount uint64, certRanges, scanRanges []shardRange, err error) {
	certs = c.Certs()
	scans = c.Scans()
	if len(certs) > maxCerts {
		return nil, nil, 0, nil, nil, fmt.Errorf("snapshot: %d certificates exceed format cap", len(certs))
	}
	if len(scans) > maxScans {
		return nil, nil, 0, nil, nil, fmt.Errorf("snapshot: %d scans exceed format cap", len(scans))
	}
	for i, rec := range certs {
		if len(rec.Cert.Raw) == 0 || len(rec.Cert.Raw) > MaxCertDER {
			return nil, nil, 0, nil, nil, fmt.Errorf("snapshot: cert %d DER length %d outside (0, %d]", i, len(rec.Cert.Raw), MaxCertDER)
		}
	}
	for _, s := range scans {
		obsCount += uint64(len(s.Obs))
	}
	certRanges = shardRanges(len(certs), opt.CertsPerShard)
	scanRanges = shardRanges(len(scans), opt.ScansPerShard)
	if len(certRanges)+len(scanRanges) > maxShards {
		return nil, nil, 0, nil, nil, fmt.Errorf("snapshot: %d shards exceed format cap %d; raise CertsPerShard/ScansPerShard",
			len(certRanges)+len(scanRanges), maxShards)
	}
	return certs, scans, obsCount, certRanges, scanRanges, nil
}

// encodeShards encodes and compresses every shard concurrently; v2 and v3
// share it, so both formats carry byte-identical shard payloads. Shard
// boundaries are fixed by the caller from data sizes alone, so the worker
// count only decides which goroutine produces which byte range, never the
// bytes themselves.
func encodeShards(certs []*scanstore.CertRecord, scans []*scanstore.Scan, certRanges, scanRanges []shardRange, opt Options) ([]encodedShard, error) {
	shards := make([]encodedShard, len(certRanges)+len(scanRanges))
	errs := make([]error, len(shards))
	forEachShard(opt.Workers, len(shards), func(i int) {
		var raw []byte
		var rg shardRange
		if i < len(certRanges) {
			rg = certRanges[i]
			raw = encodeCertShard(certs[rg.first : rg.first+rg.count])
		} else {
			rg = scanRanges[i-len(certRanges)]
			raw = encodeScanShard(scans[rg.first : rg.first+rg.count])
		}
		comp, err := gzipShard(raw)
		if err != nil {
			errs[i] = fmt.Errorf("snapshot: compress shard %d: %w", i, err)
			return
		}
		shards[i] = encodedShard{
			first:  rg.first,
			count:  rg.count,
			rawLen: len(raw),
			comp:   comp,
			sum:    sha256.Sum256(comp),
		}
		// Shard i is a stable identity (fixed by data, not scheduling), so it
		// doubles as the counter shard: no contention, same sums everywhere.
		opt.Obs.Counter("snapshot.encode.raw_bytes").AddShard(i, int64(len(raw)))
		opt.Obs.Counter("snapshot.encode.comp_bytes").AddShard(i, int64(len(comp)))
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return shards, nil
}

// encodeCertShard lays out the three certificate columns: uvarint DER
// lengths, concatenated DER bytes, 32-byte digests.
func encodeCertShard(recs []*scanstore.CertRecord) []byte {
	size := 0
	for _, rec := range recs {
		size += uvarintLen(uint64(len(rec.Cert.Raw))) + len(rec.Cert.Raw) + 32
	}
	out := make([]byte, 0, size)
	for _, rec := range recs {
		out = binary.AppendUvarint(out, uint64(len(rec.Cert.Raw)))
	}
	for _, rec := range recs {
		out = append(out, rec.Cert.Raw...)
	}
	for _, rec := range recs {
		fp := rec.Cert.Fingerprint()
		out = append(out, fp[:]...)
	}
	return out
}

// encodeScanShard lays out the scan metadata column followed by the
// certificate-ID and IP delta columns. Deltas restart from a zero base at
// each scan boundary so shards (and scans) decode independently.
func encodeScanShard(scans []*scanstore.Scan) []byte {
	var out []byte
	prevSec := int64(0)
	for i, s := range scans {
		out = binary.AppendUvarint(out, uint64(s.Operator))
		sec := s.Time.Unix()
		if i == 0 {
			out = binary.AppendVarint(out, sec)
		} else {
			out = binary.AppendVarint(out, sec-prevSec)
		}
		prevSec = sec
		out = binary.AppendUvarint(out, uint64(s.Time.Nanosecond()))
		out = binary.AppendUvarint(out, uint64(len(s.Obs)))
	}
	for _, s := range scans {
		prev := int64(0)
		for _, o := range s.Obs {
			out = binary.AppendVarint(out, int64(o.Cert)-prev)
			prev = int64(o.Cert)
		}
	}
	for _, s := range scans {
		prev := int64(0)
		for _, o := range s.Obs {
			out = binary.AppendVarint(out, int64(o.IP)-prev)
			prev = int64(o.IP)
		}
	}
	return out
}

func gzipShard(raw []byte) ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(len(raw)/2 + 64)
	zw, err := gzip.NewWriterLevel(&buf, shardCompression)
	if err != nil {
		return nil, err
	}
	if _, err := zw.Write(raw); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func putU64(b *bytes.Buffer, v uint64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	b.Write(tmp[:])
}

func putU32(b *bytes.Buffer, v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	b.Write(tmp[:])
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
