package snapshot

// Snapshot format v3: everything v2 is, plus appended point-lookup indexes.
//
// v2 made bulk loads fast, but every point question ("which certs carry this
// SPKI?", "what did this IP serve?") still decoded whole shards. v3 appends
// four fixed-width, sorted, SHA-256-checksummed index sections after the
// compressed payloads, laid out little-endian and 8-byte aligned so a reader
// can mmap the file and binary-search the indexes without decoding a single
// shard. A fifth section carries per-scan metadata so IP answers can name the
// scan's operator and time without touching scan shards.
//
// Layout (integers little-endian; see DESIGN.md "Snapshot format v3"):
//
//	magic        [8]byte  "SPKISNP3"
//	certCount    uint64
//	scanCount    uint64
//	obsCount     uint64
//	certShards   uint32
//	scanShards   uint32
//	idxSections  uint32   must equal V3SectionCount
//	reserved     uint32   must be zero
//	shard table  (certShards+scanShards) × 64-byte entries, exactly v2's
//	index table  idxSections × 64-byte entries:
//	  kind       uint32   1=fp 2=spki 3=ip 4=as 5=scanmeta, in that order
//	  entrySize  uint32   fixed key-entry width for the kind
//	  keyCount   uint64
//	  postLen    uint64   posting-array byte length
//	  reserved   uint64   must be zero
//	  sum        [32]byte SHA-256 of keys ‖ postings
//	headerSum    [32]byte SHA-256 of everything above
//	payloads     compressed shards, concatenated in table order (v2's bytes)
//	zero padding to the next 8-byte file offset
//	per section, in table order: keys, postings, zero padding to 8 bytes
//
// Key entries per kind (reserved fields must be zero):
//
//	fp (48B):       fp[32], shard u32, derOff u32, derLen u32, reserved u32
//	                sorted by fingerprint; derOff/derLen locate the DER inside
//	                the named cert shard's *uncompressed* payload
//	spki (40B):     spki[32], postOff u32, postCount u32
//	                postings: uint32 certrefs (positions in the sorted fp
//	                index), ascending; every certificate appears exactly once
//	                across all groups
//	ip (16B):       ip u32, postOff u32, postCount u32, reserved u32
//	                postings: (scan u32, certref u32) pairs, ascending, distinct
//	as (16B):       asn u32, postOff u32, postCount u32, reserved u32
//	                postings: uint32 certrefs, ascending, distinct; empty when
//	                the writer had no AS view (Options.ASOf nil)
//	scanmeta (24B): operator u32, nanos u32, unixSec u64 (int64 bits),
//	                obsCount u32, reserved u32 — in scan-ID order
//
// postOff is an element index (not bytes) into the section's posting array;
// groups tile the array contiguously, which the reader verifies, so no two
// keys can claim overlapping postings. Certificates are referenced by their
// position in the sorted fingerprint index ("certref"), never by corpus
// CertID, so a random-access reader needs no ID→fingerprint table.
//
// The zero-copy rule: index sections and scan metadata may be served straight
// from the mapped file; certificate DER is always copied out of a
// decompressed shard buffer, never aliased to the mapping.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"securepki/internal/netsim"
)

// MagicV3 opens every v3 snapshot.
const MagicV3 = "SPKISNP3"

// headerFixedV3 is the byte length of the v3 fixed header.
const headerFixedV3 = 8 + 3*8 + 4*4

// idxTableEntry is the byte length of one index-table entry.
const idxTableEntry = 2*4 + 3*8 + 32

// V3SectionCount is the number of index sections a v3 file carries — always
// exactly five, in kind order. A header claiming any other count is rejected
// before the index table is even allocated.
const V3SectionCount = 5

// Index section kinds, in file order.
const (
	V3KindFP       = 1 // fingerprint → (shard, DER offset, length)
	V3KindSPKI     = 2 // SPKI fingerprint → cert set
	V3KindIP       = 3 // IP → (scan, cert) sighting runs
	V3KindAS       = 4 // AS number → cert set
	V3KindScanMeta = 5 // scan ID → (operator, time, obs count)
)

// Fixed key-entry widths per kind.
const (
	V3FPEntry       = 48
	V3SPKIEntry     = 40
	V3IPEntry       = 16
	V3ASEntry       = 16
	V3ScanMetaEntry = 24
)

// maxIndexBytes bounds one index section's keys array and posting array
// independently, so a hostile header cannot force a huge allocation.
const maxIndexBytes = 1 << 30

// v3EntrySize maps a section kind (1-based) to its key-entry width.
func v3EntrySize(kind uint32) uint32 {
	switch kind {
	case V3KindFP:
		return V3FPEntry
	case V3KindSPKI:
		return V3SPKIEntry
	case V3KindIP:
		return V3IPEntry
	case V3KindAS:
		return V3ASEntry
	case V3KindScanMeta:
		return V3ScanMetaEntry
	}
	return 0
}

// pad8 returns how many zero bytes bring off to the next 8-byte boundary.
func pad8(off int64) int64 { return (8 - off%8) % 8 }

// V3Shard is one shard-table entry plus its resolved file offset.
type V3Shard struct {
	First, Count    uint64
	RawLen, CompLen uint64
	Sum             [32]byte
	Off             int64 // absolute file offset of the compressed payload
}

// Inflate checksums and decompresses the shard's payload, insisting on the
// exact advertised uncompressed length.
func (sh V3Shard) Inflate(comp []byte) ([]byte, error) {
	if uint64(len(comp)) != sh.CompLen {
		return nil, fmt.Errorf("snapshot: shard payload is %d bytes, table says %d", len(comp), sh.CompLen)
	}
	if sum := sha256.Sum256(comp); sum != sh.Sum {
		return nil, fmt.Errorf("snapshot: shard checksum mismatch")
	}
	return gunzipShard(comp, sh.RawLen)
}

// V3Section is one index-table entry plus its resolved file offsets.
type V3Section struct {
	Kind      uint32
	EntrySize uint32
	KeyCount  uint64
	PostLen   uint64
	Sum       [32]byte // SHA-256 of keys ‖ postings
	KeysOff   int64    // absolute file offset of the key array
	PostOff   int64    // absolute file offset of the posting array
}

// KeysLen returns the key array's byte length.
func (s V3Section) KeysLen() int64 { return int64(s.KeyCount) * int64(s.EntrySize) }

// V3Layout is the parsed header of a v3 file: counts, shard table and index
// table with absolute offsets, everything a random-access reader needs to
// serve lookups without streaming the file. ReadV3Layout is the only
// constructor; it verifies the header checksum and every structural bound
// against the file size before returning.
type V3Layout struct {
	CertCount, ScanCount, ObsCount uint64
	CertShards, ScanShards         uint32
	Shards                         []V3Shard
	Sections                       [V3SectionCount]V3Section
	Size                           int64 // exact file size the layout demands
}

// ReadV3Layout parses and validates a v3 header from a random-access source.
// It reads only the header region (fixed header, shard table, index table,
// checksum) plus the alignment padding; payloads and sections stay untouched.
// All input is hostile: every count is capped before the allocation it sizes,
// and the resulting layout is checked against the actual file size so no
// later read can run off the end.
func ReadV3Layout(ra io.ReaderAt, size int64) (*V3Layout, error) {
	fixed := make([]byte, headerFixedV3)
	if size < headerFixedV3 {
		return nil, fmt.Errorf("snapshot: %d bytes is too short for a v3 header", size)
	}
	if _, err := ra.ReadAt(fixed, 0); err != nil {
		return nil, fmt.Errorf("snapshot: read v3 header: %w", err)
	}
	if string(fixed[:8]) != MagicV3 {
		return nil, fmt.Errorf("snapshot: not a v3 snapshot (magic %q)", fixed[:8])
	}
	lay, nShards, err := parseV3Fixed(fixed)
	if err != nil {
		return nil, err
	}

	tableLen := int64(nShards) * tableEntry
	idxLen := int64(V3SectionCount) * idxTableEntry
	headerLen := int64(headerFixedV3) + tableLen + idxLen + 32
	if size < headerLen {
		return nil, fmt.Errorf("snapshot: %d bytes is too short for the v3 header tables", size)
	}
	tables := make([]byte, tableLen+idxLen+32)
	if _, err := ra.ReadAt(tables, headerFixedV3); err != nil {
		return nil, fmt.Errorf("snapshot: read v3 tables: %w", err)
	}
	table := tables[:tableLen]
	itable := tables[tableLen : tableLen+idxLen]
	h := sha256.New()
	h.Write(fixed)
	h.Write(table)
	h.Write(itable)
	if !bytes.Equal(h.Sum(nil), tables[tableLen+idxLen:]) {
		return nil, fmt.Errorf("snapshot: header checksum mismatch")
	}
	if err := parseV3Tables(lay, table, itable); err != nil {
		return nil, err
	}

	// Resolve absolute offsets and demand the file is exactly the right size:
	// shorter is truncation, longer is trailing garbage.
	off := headerLen
	for i := range lay.Shards {
		lay.Shards[i].Off = off
		off += int64(lay.Shards[i].CompLen)
	}
	off += pad8(off)
	for i := range lay.Sections {
		lay.Sections[i].KeysOff = off
		off += lay.Sections[i].KeysLen()
		lay.Sections[i].PostOff = off
		off += int64(lay.Sections[i].PostLen)
		off += pad8(off)
	}
	lay.Size = off
	if size != lay.Size {
		return nil, fmt.Errorf("snapshot: file is %d bytes, v3 layout wants %d", size, lay.Size)
	}
	return lay, nil
}

// parseV3Fixed validates the fixed header fields. The index-section count is
// judged here, before any table is allocated: a count disagreeing with the
// format is an explicit error, never an allocation size.
func parseV3Fixed(fixed []byte) (*V3Layout, uint64, error) {
	lay := &V3Layout{
		CertCount:  binary.LittleEndian.Uint64(fixed[8:]),
		ScanCount:  binary.LittleEndian.Uint64(fixed[16:]),
		ObsCount:   binary.LittleEndian.Uint64(fixed[24:]),
		CertShards: binary.LittleEndian.Uint32(fixed[32:]),
		ScanShards: binary.LittleEndian.Uint32(fixed[36:]),
	}
	idxSections := binary.LittleEndian.Uint32(fixed[40:])
	reserved := binary.LittleEndian.Uint32(fixed[44:])
	if idxSections != V3SectionCount {
		return nil, 0, fmt.Errorf("snapshot: header claims %d index sections, format has %d", idxSections, V3SectionCount)
	}
	if reserved != 0 {
		return nil, 0, fmt.Errorf("snapshot: reserved header field is %d, want 0", reserved)
	}
	if lay.CertCount > maxCerts || lay.ScanCount > maxScans {
		return nil, 0, fmt.Errorf("snapshot: absurd counts: %d certs, %d scans", lay.CertCount, lay.ScanCount)
	}
	nShards := uint64(lay.CertShards) + uint64(lay.ScanShards)
	if nShards > maxShards {
		return nil, 0, fmt.Errorf("snapshot: %d shards exceed cap %d", nShards, maxShards)
	}
	if (lay.CertCount == 0) != (lay.CertShards == 0) || (lay.ScanCount == 0) != (lay.ScanShards == 0) {
		return nil, 0, fmt.Errorf("snapshot: shard/count mismatch: %d certs in %d shards, %d scans in %d shards",
			lay.CertCount, lay.CertShards, lay.ScanCount, lay.ScanShards)
	}
	return lay, nShards, nil
}

// parseV3Tables decodes the shard and index tables into lay, applying the
// same per-shard caps and tiling discipline as v2 plus the per-section
// metadata invariants.
func parseV3Tables(lay *V3Layout, table, itable []byte) error {
	nShards := len(table) / tableEntry
	lay.Shards = make([]V3Shard, nShards)
	metas := make([]shardMeta, nShards)
	for i := range lay.Shards {
		e := table[i*tableEntry:]
		sh := V3Shard{
			First:   binary.LittleEndian.Uint64(e[0:]),
			Count:   binary.LittleEndian.Uint64(e[8:]),
			RawLen:  binary.LittleEndian.Uint64(e[16:]),
			CompLen: binary.LittleEndian.Uint64(e[24:]),
		}
		copy(sh.Sum[:], e[32:64])
		if sh.RawLen > maxShardRaw {
			return fmt.Errorf("snapshot: shard %d claims %d raw bytes, cap %d", i, sh.RawLen, maxShardRaw)
		}
		if sh.RawLen > (sh.CompLen+1024)*maxExpansion {
			return fmt.Errorf("snapshot: shard %d expansion %d -> %d exceeds ratio cap", i, sh.CompLen, sh.RawLen)
		}
		if sh.CompLen > maxShardRaw {
			return fmt.Errorf("snapshot: shard %d claims %d compressed bytes, cap %d", i, sh.CompLen, maxShardRaw)
		}
		lay.Shards[i] = sh
		metas[i] = shardMeta{first: sh.First, count: sh.Count, rawLen: sh.RawLen, compLen: sh.CompLen}
	}
	if err := checkTiling(metas[:lay.CertShards], lay.CertCount, "cert"); err != nil {
		return err
	}
	if err := checkTiling(metas[lay.CertShards:], lay.ScanCount, "scan"); err != nil {
		return err
	}
	for i := range lay.Sections {
		e := itable[i*idxTableEntry:]
		sec := V3Section{
			Kind:      binary.LittleEndian.Uint32(e[0:]),
			EntrySize: binary.LittleEndian.Uint32(e[4:]),
			KeyCount:  binary.LittleEndian.Uint64(e[8:]),
			PostLen:   binary.LittleEndian.Uint64(e[16:]),
		}
		if rsvd := binary.LittleEndian.Uint64(e[24:]); rsvd != 0 {
			return fmt.Errorf("snapshot: index section %d reserved field is %d, want 0", i, rsvd)
		}
		copy(sec.Sum[:], e[32:64])
		if err := validateV3SectionMeta(i, sec, lay); err != nil {
			return err
		}
		lay.Sections[i] = sec
	}
	return nil
}

// validateV3SectionMeta applies the per-kind count invariants that can be
// judged from the table alone, before any section bytes are read.
func validateV3SectionMeta(i int, sec V3Section, lay *V3Layout) error {
	wantKind := uint32(i + 1)
	if sec.Kind != wantKind {
		return fmt.Errorf("snapshot: index section %d has kind %d, want %d", i, sec.Kind, wantKind)
	}
	if want := v3EntrySize(sec.Kind); sec.EntrySize != want {
		return fmt.Errorf("snapshot: index section %d entry size %d, want %d", i, sec.EntrySize, want)
	}
	if sec.KeyCount > maxIndexBytes/uint64(sec.EntrySize) {
		return fmt.Errorf("snapshot: index section %d claims %d keys, cap %d", i, sec.KeyCount, maxIndexBytes/uint64(sec.EntrySize))
	}
	if sec.PostLen > maxIndexBytes {
		return fmt.Errorf("snapshot: index section %d claims %d posting bytes, cap %d", i, sec.PostLen, maxIndexBytes)
	}
	switch sec.Kind {
	case V3KindFP:
		if sec.KeyCount != lay.CertCount {
			return fmt.Errorf("snapshot: fingerprint index has %d keys for %d certificates", sec.KeyCount, lay.CertCount)
		}
		if sec.PostLen != 0 {
			return fmt.Errorf("snapshot: fingerprint index carries %d posting bytes, want 0", sec.PostLen)
		}
	case V3KindSPKI:
		if sec.KeyCount > lay.CertCount {
			return fmt.Errorf("snapshot: SPKI index has %d keys for %d certificates", sec.KeyCount, lay.CertCount)
		}
		if sec.PostLen != 4*lay.CertCount {
			return fmt.Errorf("snapshot: SPKI index carries %d posting bytes for %d certificates", sec.PostLen, lay.CertCount)
		}
		if (sec.KeyCount == 0) != (lay.CertCount == 0) {
			return fmt.Errorf("snapshot: SPKI index has %d keys for %d certificates", sec.KeyCount, lay.CertCount)
		}
	case V3KindIP:
		if sec.PostLen%8 != 0 {
			return fmt.Errorf("snapshot: IP index posting bytes %d not a multiple of 8", sec.PostLen)
		}
		pairs := sec.PostLen / 8
		if pairs > lay.ObsCount {
			return fmt.Errorf("snapshot: IP index holds %d sightings for %d observations", pairs, lay.ObsCount)
		}
		if sec.KeyCount > pairs {
			return fmt.Errorf("snapshot: IP index has %d keys but %d sightings", sec.KeyCount, pairs)
		}
		if (sec.KeyCount == 0) != (lay.ObsCount == 0) {
			return fmt.Errorf("snapshot: IP index has %d keys for %d observations", sec.KeyCount, lay.ObsCount)
		}
	case V3KindAS:
		if sec.PostLen%4 != 0 {
			return fmt.Errorf("snapshot: AS index posting bytes %d not a multiple of 4", sec.PostLen)
		}
		refs := sec.PostLen / 4
		if refs > lay.ObsCount {
			return fmt.Errorf("snapshot: AS index holds %d refs for %d observations", refs, lay.ObsCount)
		}
		if sec.KeyCount > refs {
			return fmt.Errorf("snapshot: AS index has %d keys but %d refs", sec.KeyCount, refs)
		}
		if refs > 0 && sec.KeyCount == 0 {
			return fmt.Errorf("snapshot: AS index has postings but no keys")
		}
	case V3KindScanMeta:
		if sec.KeyCount != lay.ScanCount {
			return fmt.Errorf("snapshot: scan metadata has %d entries for %d scans", sec.KeyCount, lay.ScanCount)
		}
		if sec.PostLen != 0 {
			return fmt.Errorf("snapshot: scan metadata carries %d posting bytes, want 0", sec.PostLen)
		}
	}
	return nil
}

// ValidateSection applies the full structural checks to one section's bytes:
// sorted keys, contiguous (never overlapping) posting groups, and every
// offset and reference in bounds. Both readers call it — the streaming loader
// before trusting the file, the random-access store at open so lookups can
// index without rechecking.
func (lay *V3Layout) ValidateSection(i int, keys, post []byte) error {
	sec := lay.Sections[i]
	if int64(len(keys)) != sec.KeysLen() || uint64(len(post)) != sec.PostLen {
		return fmt.Errorf("snapshot: index section %d bytes do not match its table entry", i)
	}
	es := int(sec.EntrySize)
	n := int(sec.KeyCount)
	entry := func(k int) []byte { return keys[k*es : (k+1)*es] }

	switch sec.Kind {
	case V3KindFP:
		var prev []byte
		for k := 0; k < n; k++ {
			e := entry(k)
			if prev != nil && bytes.Compare(prev, e[:32]) >= 0 {
				return fmt.Errorf("snapshot: fingerprint index unsorted at key %d", k)
			}
			prev = e[:32]
			shard := binary.LittleEndian.Uint32(e[32:])
			off := uint64(binary.LittleEndian.Uint32(e[36:]))
			dlen := uint64(binary.LittleEndian.Uint32(e[40:]))
			if rsvd := binary.LittleEndian.Uint32(e[44:]); rsvd != 0 {
				return fmt.Errorf("snapshot: fingerprint index key %d reserved field is %d", k, rsvd)
			}
			if shard >= lay.CertShards {
				return fmt.Errorf("snapshot: fingerprint index key %d references cert shard %d of %d", k, shard, lay.CertShards)
			}
			if dlen == 0 || dlen > MaxCertDER {
				return fmt.Errorf("snapshot: fingerprint index key %d claims %d DER bytes, cap %d", k, dlen, MaxCertDER)
			}
			if raw := lay.Shards[shard].RawLen; off+dlen > raw {
				return fmt.Errorf("snapshot: fingerprint index key %d DER range [%d,%d) outside shard %d payload of %d bytes",
					k, off, off+dlen, shard, raw)
			}
		}
	case V3KindSPKI, V3KindAS:
		what := "SPKI"
		if sec.Kind == V3KindAS {
			what = "AS"
		}
		// Key order, contiguous group layout, and per-group reference checks.
		var next uint64
		for k := 0; k < n; k++ {
			e := entry(k)
			if sec.Kind == V3KindSPKI {
				if k > 0 && bytes.Compare(entry(k-1)[:32], e[:32]) >= 0 {
					return fmt.Errorf("snapshot: SPKI index unsorted at key %d", k)
				}
			} else {
				if k > 0 && binary.LittleEndian.Uint32(entry(k-1)) >= binary.LittleEndian.Uint32(e) {
					return fmt.Errorf("snapshot: AS index unsorted at key %d", k)
				}
				if rsvd := binary.LittleEndian.Uint32(e[12:]); rsvd != 0 {
					return fmt.Errorf("snapshot: AS index key %d reserved field is %d", k, rsvd)
				}
			}
			po := 32
			if sec.Kind == V3KindAS {
				po = 4
			}
			off := uint64(binary.LittleEndian.Uint32(e[po:]))
			cnt := uint64(binary.LittleEndian.Uint32(e[po+4:]))
			if off != next {
				return fmt.Errorf("snapshot: %s index key %d postings start at %d, want %d", what, k, off, next)
			}
			if cnt == 0 {
				return fmt.Errorf("snapshot: %s index key %d has no postings", what, k)
			}
			next += cnt
			if next > sec.PostLen/4 {
				return fmt.Errorf("snapshot: %s index postings overrun the array", what)
			}
			// Refs ascending and in bounds within the group.
			prevRef := int64(-1)
			for p := off; p < off+cnt; p++ {
				ref := binary.LittleEndian.Uint32(post[p*4:])
				if uint64(ref) >= lay.CertCount {
					return fmt.Errorf("snapshot: %s index references cert %d of %d", what, ref, lay.CertCount)
				}
				if int64(ref) <= prevRef {
					return fmt.Errorf("snapshot: %s index key %d postings unsorted", what, k)
				}
				prevRef = int64(ref)
			}
		}
		if next != sec.PostLen/4 {
			return fmt.Errorf("snapshot: %s index postings cover %d of %d elements", what, next, sec.PostLen/4)
		}
	case V3KindIP:
		var next uint64
		for k := 0; k < n; k++ {
			e := entry(k)
			if k > 0 && binary.LittleEndian.Uint32(entry(k-1)) >= binary.LittleEndian.Uint32(e) {
				return fmt.Errorf("snapshot: IP index unsorted at key %d", k)
			}
			if rsvd := binary.LittleEndian.Uint32(e[12:]); rsvd != 0 {
				return fmt.Errorf("snapshot: IP index key %d reserved field is %d", k, rsvd)
			}
			off := uint64(binary.LittleEndian.Uint32(e[4:]))
			cnt := uint64(binary.LittleEndian.Uint32(e[8:]))
			if off != next {
				return fmt.Errorf("snapshot: IP index key %d postings start at %d, want %d", k, off, next)
			}
			if cnt == 0 {
				return fmt.Errorf("snapshot: IP index key %d has no postings", k)
			}
			next += cnt
			if next > sec.PostLen/8 {
				return fmt.Errorf("snapshot: IP index postings overrun the array")
			}
			prevScan, prevRef := int64(-1), int64(-1)
			for p := off; p < off+cnt; p++ {
				scan := binary.LittleEndian.Uint32(post[p*8:])
				ref := binary.LittleEndian.Uint32(post[p*8+4:])
				if uint64(scan) >= lay.ScanCount {
					return fmt.Errorf("snapshot: IP index references scan %d of %d", scan, lay.ScanCount)
				}
				if uint64(ref) >= lay.CertCount {
					return fmt.Errorf("snapshot: IP index references cert %d of %d", ref, lay.CertCount)
				}
				if int64(scan) < prevScan || (int64(scan) == prevScan && int64(ref) <= prevRef) {
					return fmt.Errorf("snapshot: IP index key %d postings unsorted", k)
				}
				prevScan, prevRef = int64(scan), int64(ref)
			}
		}
		if next != sec.PostLen/8 {
			return fmt.Errorf("snapshot: IP index postings cover %d of %d elements", next, sec.PostLen/8)
		}
	case V3KindScanMeta:
		var total uint64
		prevSec := int64(0)
		for k := 0; k < n; k++ {
			e := entry(k)
			op := binary.LittleEndian.Uint32(e[0:])
			nanos := binary.LittleEndian.Uint32(e[4:])
			sec64 := int64(binary.LittleEndian.Uint64(e[8:]))
			cnt := binary.LittleEndian.Uint32(e[16:])
			if rsvd := binary.LittleEndian.Uint32(e[20:]); rsvd != 0 {
				return fmt.Errorf("snapshot: scan metadata %d reserved field is %d", k, rsvd)
			}
			if op > 1<<20 {
				return fmt.Errorf("snapshot: scan %d operator %d is absurd", k, op)
			}
			if nanos >= 1e9 {
				return fmt.Errorf("snapshot: scan %d claims %d nanoseconds", k, nanos)
			}
			if k > 0 && sec64 < prevSec {
				return fmt.Errorf("snapshot: scan metadata out of chronological order at scan %d", k)
			}
			prevSec = sec64
			total += uint64(cnt)
		}
		if total != lay.ObsCount {
			return fmt.Errorf("snapshot: scan metadata counts %d observations, header claims %d", total, lay.ObsCount)
		}
	}
	if sum := sha256SectionSum(keys, post); sum != sec.Sum {
		return fmt.Errorf("snapshot: index section %d checksum mismatch", i)
	}
	return nil
}

// sha256SectionSum hashes a section's keys and postings as one stream, the
// digest stored in its index-table entry.
func sha256SectionSum(keys, post []byte) [32]byte {
	h := sha256.New()
	h.Write(keys)
	h.Write(post)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// V3ScanMeta is one decoded scan-metadata entry.
type V3ScanMeta struct {
	Operator uint32
	Time     time.Time
	ObsCount uint32
}

// ScanMetaAt decodes entry k of a validated scan-metadata section.
func ScanMetaAt(keys []byte, k int) V3ScanMeta {
	e := keys[k*V3ScanMetaEntry:]
	return V3ScanMeta{
		Operator: binary.LittleEndian.Uint32(e[0:]),
		Time: time.Unix(int64(binary.LittleEndian.Uint64(e[8:])),
			int64(binary.LittleEndian.Uint32(e[4:]))).UTC(),
		ObsCount: binary.LittleEndian.Uint32(e[16:]),
	}
}

// InternetASOf adapts a netsim Internet into the Options.ASOf shape, so
// writers with a network model annotate the AS index. A nil Internet returns
// nil (no AS index).
func InternetASOf(inet *netsim.Internet) func(netsim.IP, time.Time) (int, bool) {
	if inet == nil {
		return nil
	}
	return func(ip netsim.IP, at time.Time) (int, bool) {
		as := inet.Lookup(ip, at)
		if as == nil {
			return 0, false
		}
		return as.ASN, true
	}
}
