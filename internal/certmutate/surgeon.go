package certmutate

import (
	"bytes"
	"errors"
	"fmt"
	"math/big"

	"securepki/internal/asn1der"
)

// tagContextExplicit returns the tag byte of a constructed explicit [n].
func tagContextExplicit(n int) byte {
	return byte(asn1der.ClassContextSpecific | 0x20 | n)
}

// certParts is a certificate decomposed into its raw top-level TLV elements,
// the unit of frankencert surgery: operators splice whole fields (their full
// tag-length-value bytes) between certificates or replace them with
// pathological re-encodings, then assemble rebuilds the outer framing with
// correct lengths. The signature is never re-computed — a mutated TBS no
// longer verifies, exactly like the frankencerts the technique is named for.
type certParts struct {
	version  []byte   // full [0] EXPLICIT TLV; nil when absent (v1)
	serial   []byte   // INTEGER TLV
	tbsAlg   []byte   // AlgorithmIdentifier SEQUENCE TLV inside the TBS
	issuer   []byte   // issuer Name SEQUENCE TLV
	validity []byte   // Validity SEQUENCE TLV
	subject  []byte   // subject Name SEQUENCE TLV
	spki     []byte   // SubjectPublicKeyInfo SEQUENCE TLV
	rest     [][]byte // trailing TBS elements ([1]/[2] UIDs, [3] extensions) in order
	sigAlg   []byte   // outer AlgorithmIdentifier TLV
	sig      []byte   // signatureValue BIT STRING TLV
}

// splitCert decomposes a DER certificate into its parts. It is positional and
// deliberately lenient — it validates framing (every TLV well-formed, nothing
// trailing) but not field semantics, so already-weird certificates (bogus
// versions, negative serials) still split cleanly and can be mutated further.
func splitCert(der []byte) (*certParts, error) {
	top := *asn1der.NewDecoder(der)
	outer, err := top.SequenceV()
	if err != nil {
		return nil, fmt.Errorf("certmutate: certificate: %w", err)
	}
	if !top.Empty() {
		return nil, errors.New("certmutate: trailing bytes after certificate")
	}

	_, rawTBS, err := outer.ReadElement()
	if err != nil {
		return nil, fmt.Errorf("certmutate: tbsCertificate: %w", err)
	}
	tbsOuter := *asn1der.NewDecoder(rawTBS)
	tbs, err := tbsOuter.SequenceV()
	if err != nil {
		return nil, fmt.Errorf("certmutate: tbsCertificate: %w", err)
	}

	p := &certParts{}
	read := func(field string, dst *[]byte) error {
		_, el, err := tbs.ReadElement()
		if err != nil {
			return fmt.Errorf("certmutate: %s: %w", field, err)
		}
		*dst = el
		return nil
	}
	if tbs.PeekContextExplicit(0) {
		if err := read("version", &p.version); err != nil {
			return nil, err
		}
	}
	for _, f := range []struct {
		name string
		dst  *[]byte
	}{
		{"serialNumber", &p.serial},
		{"signature", &p.tbsAlg},
		{"issuer", &p.issuer},
		{"validity", &p.validity},
		{"subject", &p.subject},
		{"subjectPublicKeyInfo", &p.spki},
	} {
		if err := read(f.name, f.dst); err != nil {
			return nil, err
		}
	}
	for !tbs.Empty() {
		_, el, err := tbs.ReadElement()
		if err != nil {
			return nil, fmt.Errorf("certmutate: tbs trailer: %w", err)
		}
		p.rest = append(p.rest, el)
	}

	if _, p.sigAlg, err = outer.ReadElement(); err != nil {
		return nil, fmt.Errorf("certmutate: signatureAlgorithm: %w", err)
	}
	if _, p.sig, err = outer.ReadElement(); err != nil {
		return nil, fmt.Errorf("certmutate: signatureValue: %w", err)
	}
	if !outer.Empty() {
		return nil, errors.New("certmutate: trailing bytes after signature")
	}
	return p, nil
}

// assemble rebuilds the full certificate DER from the parts, recomputing
// every enclosing length. Unmodified parts round-trip byte-identically.
func (p *certParts) assemble() []byte {
	var tbs asn1der.Encoder
	tbs.Sequence(func(e *asn1der.Encoder) {
		e.Raw(p.version)
		e.Raw(p.serial)
		e.Raw(p.tbsAlg)
		e.Raw(p.issuer)
		e.Raw(p.validity)
		e.Raw(p.subject)
		e.Raw(p.spki)
		for _, r := range p.rest {
			e.Raw(r)
		}
	})
	var cert asn1der.Encoder
	cert.Sequence(func(e *asn1der.Encoder) {
		e.Raw(tbs.Bytes())
		e.Raw(p.sigAlg)
		e.Raw(p.sig)
	})
	return cert.Bytes()
}

// rewrite splits der, lets edit mutate the parts in place, and reassembles.
// It errors if the result is byte-identical to the input: an operator that
// changes nothing would silently shrink the configured malformed fraction.
func rewrite(der []byte, edit func(*certParts) error) ([]byte, error) {
	p, err := splitCert(der)
	if err != nil {
		return nil, err
	}
	if err := edit(p); err != nil {
		return nil, err
	}
	out := p.assemble()
	if bytes.Equal(out, der) {
		return nil, errNoChange
	}
	return out, nil
}

// readVersion decodes the version number (as 1-based X.509 version) from the
// [0] EXPLICIT TLV; absent means v1.
func (p *certParts) readVersion() int {
	if p.version == nil {
		return 1
	}
	d := *asn1der.NewDecoder(p.version)
	vd, err := d.ContextExplicitV(0)
	if err != nil {
		return 1
	}
	v, err := vd.Int()
	if err != nil {
		return 1
	}
	return int(v) + 1
}

// setVersion replaces (or inserts) the [0] EXPLICIT version element with the
// given 1-based version number.
func (p *certParts) setVersion(version int) {
	var e asn1der.Encoder
	e.ContextExplicit(0, func(e *asn1der.Encoder) {
		e.Int(int64(version - 1))
	})
	p.version = e.Bytes()
}

// ensureV3 upgrades the certificate to version 3 if it is anything else, so
// extension-editing operators never manufacture the v1/v2-with-extensions
// shape (a parser divergence in its own right and not the one under test).
// It reports whether a change was made.
func (p *certParts) ensureV3() bool {
	if p.readVersion() == 3 {
		return false
	}
	p.setVersion(3)
	return true
}

// readSerial decodes the serial INTEGER; it tolerates any minimally-encoded
// value since already-mutated or hand-built inputs may carry weird serials.
func (p *certParts) readSerial() (*big.Int, error) {
	d := *asn1der.NewDecoder(p.serial)
	return d.BigInt()
}

// setSerial replaces the serial with the minimal encoding of v.
func (p *certParts) setSerial(v *big.Int) {
	var e asn1der.Encoder
	e.BigInt(v)
	p.serial = e.Bytes()
}

// validityTimes splits the Validity SEQUENCE into its two raw time TLVs.
func (p *certParts) validityTimes() (notBefore, notAfter []byte, err error) {
	d := *asn1der.NewDecoder(p.validity)
	v, err := d.SequenceV()
	if err != nil {
		return nil, nil, fmt.Errorf("certmutate: validity: %w", err)
	}
	if _, notBefore, err = v.ReadElement(); err != nil {
		return nil, nil, fmt.Errorf("certmutate: notBefore: %w", err)
	}
	if _, notAfter, err = v.ReadElement(); err != nil {
		return nil, nil, fmt.Errorf("certmutate: notAfter: %w", err)
	}
	if !v.Empty() {
		return nil, nil, errors.New("certmutate: trailing bytes in validity")
	}
	return notBefore, notAfter, nil
}

// setValidity rebuilds the Validity SEQUENCE from two raw time TLVs.
func (p *certParts) setValidity(notBefore, notAfter []byte) {
	var e asn1der.Encoder
	e.Sequence(func(e *asn1der.Encoder) {
		e.Raw(notBefore)
		e.Raw(notAfter)
	})
	p.validity = e.Bytes()
}

// extensionIndex finds the [3] EXPLICIT extensions element in rest, or -1.
func (p *certParts) extensionIndex() int {
	for i, el := range p.rest {
		if len(el) > 0 && el[0] == tagContextExplicit(3) {
			return i
		}
	}
	return -1
}

// extensionList decodes the [3] wrapper into the raw TLVs of its individual
// Extension SEQUENCEs. A nil receiver element (no extensions) yields nil.
func (p *certParts) extensionList() ([][]byte, error) {
	i := p.extensionIndex()
	if i < 0 {
		return nil, nil
	}
	d := *asn1der.NewDecoder(p.rest[i])
	wrap, err := d.ContextExplicitV(3)
	if err != nil {
		return nil, fmt.Errorf("certmutate: extensions: %w", err)
	}
	seq, err := wrap.SequenceV()
	if err != nil {
		return nil, fmt.Errorf("certmutate: extensions: %w", err)
	}
	var list [][]byte
	for !seq.Empty() {
		_, el, err := seq.ReadElement()
		if err != nil {
			return nil, fmt.Errorf("certmutate: extension: %w", err)
		}
		list = append(list, el)
	}
	return list, nil
}

// setExtensionList rebuilds the [3] EXPLICIT wrapper around the given raw
// Extension TLVs, replacing any existing one (or appending the element if the
// certificate had none). An empty list removes the wrapper entirely.
func (p *certParts) setExtensionList(list [][]byte) {
	i := p.extensionIndex()
	if len(list) == 0 {
		if i >= 0 {
			p.rest = append(p.rest[:i], p.rest[i+1:]...)
		}
		return
	}
	var e asn1der.Encoder
	e.ContextExplicit(3, func(e *asn1der.Encoder) {
		e.Sequence(func(e *asn1der.Encoder) {
			for _, ext := range list {
				e.Raw(ext)
			}
		})
	})
	if i >= 0 {
		p.rest[i] = e.Bytes()
	} else {
		p.rest = append(p.rest, e.Bytes())
	}
}

// extensionOID returns the raw OID contents of an Extension TLV, or nil if
// the element does not decode as one.
func extensionOID(ext []byte) []byte {
	d := *asn1der.NewDecoder(ext)
	seq, err := d.SequenceV()
	if err != nil {
		return nil
	}
	oid, err := seq.RawOID()
	if err != nil {
		return nil
	}
	return oid
}

// encodeExtension builds one Extension TLV from an OID, criticality and the
// raw DER of the extnValue (which is wrapped in the OCTET STRING here).
func encodeExtension(oid []int, critical bool, value []byte) []byte {
	var e asn1der.Encoder
	e.Sequence(func(e *asn1der.Encoder) {
		e.OID(oid)
		if critical {
			e.Bool(true)
		}
		e.OctetString(value)
	})
	return e.Bytes()
}

// encodeCNName builds a Name SEQUENCE holding a single CN attribute.
func encodeCNName(cn string) []byte {
	var e asn1der.Encoder
	e.Sequence(func(e *asn1der.Encoder) {
		e.Set(func(e *asn1der.Encoder) {
			e.Sequence(func(e *asn1der.Encoder) {
				e.OID(oidCommonName)
				e.UTF8String(cn)
			})
		})
	})
	return e.Bytes()
}

// Extension and attribute OIDs the operators splice in. Kept local: x509lite
// does not export its OID table, and certmutate must stay importable without
// widening x509lite's API.
var (
	oidCommonName  = []int{2, 5, 4, 3}
	oidExtKeyUsage = []int{2, 5, 29, 15}
	oidExtSAN      = []int{2, 5, 29, 17}
	// oidUnknownExt is a private-arc OID no parser in the repo recognises;
	// the truncated-extension operator hides garbage behind it.
	oidUnknownExt = []int{1, 3, 6, 1, 4, 1, 99999, 666}
)
