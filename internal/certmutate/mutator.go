package certmutate

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"math/big"
	"time"

	"securepki/internal/stats"
	"securepki/internal/x509lite"
)

// Seed-domain salts. The schedule stream decides whether and how a host
// mutates; each operator then gets its own independent stream so inserting or
// removing an operator from the registry cannot shift the bytes another
// operator produces.
const (
	saltSchedule uint64 = 0x6672616e6b656e31 // "franken1"
	saltOperator uint64 = 0x6672616e6b656e32 // "franken2"
	// hostMix spreads consecutive host indexes across the seed space
	// (golden-ratio multiplier, same trick SplitMix64 uses internally).
	hostMix uint64 = 0x9e3779b97f4a7c15
)

// Mutator applies population-class mutations to a fraction of hosts as a pure
// function of (seed, host index). It is safe for concurrent use: all state is
// immutable after New.
type Mutator struct {
	seed     uint64
	frac     float64
	ops      []Operator // population operators, ID-sorted
	fallback Operator
	donors   *Donors
}

// New builds a Mutator that mutates approximately frac of hosts (0 ≤ frac ≤ 1)
// using every population-class operator. The donor pool derives from the same
// seed.
func New(seed uint64, frac float64) (*Mutator, error) {
	if frac < 0 || frac > 1 {
		return nil, fmt.Errorf("certmutate: mutate fraction %v outside [0, 1]", frac)
	}
	donors, err := newDonors(seed)
	if err != nil {
		return nil, err
	}
	m := &Mutator{seed: seed, frac: frac, ops: PopulationOperators(), donors: donors}
	for _, op := range m.ops {
		if op.ID == fallbackOperatorID {
			m.fallback = op
		}
	}
	if m.fallback.ID == "" {
		return nil, fmt.Errorf("certmutate: fallback operator %q missing from registry", fallbackOperatorID)
	}
	return m, nil
}

// Seed returns the mutator's seed.
func (m *Mutator) Seed() uint64 { return m.seed }

// Fraction returns the configured malformed fraction.
func (m *Mutator) Fraction() float64 { return m.frac }

// Donors exposes the donor pool (fuzz and matrix harnesses reuse its certs as
// mutation bases).
func (m *Mutator) Donors() *Donors { return m.donors }

// OperatorFor reports whether the host at the given global index mutates, and
// if so with which operator. The decision consumes exactly two draws from the
// host's schedule stream, so it is independent of call order and batching.
func (m *Mutator) OperatorFor(host int) (Operator, bool) {
	if m.frac <= 0 {
		return Operator{}, false
	}
	r := stats.NewRNG(m.seed ^ saltSchedule ^ uint64(host)*hostMix)
	if !r.Bool(m.frac) {
		return Operator{}, false
	}
	return m.ops[r.Intn(len(m.ops))], true
}

// Apply runs op over der with the deterministic random stream derived from
// (seed, operator ID, host). Harnesses that sweep every operator over a fixed
// base use it directly; population injection goes through MutateDER.
func (m *Mutator) Apply(op Operator, host int, der []byte) ([]byte, error) {
	rng := stats.NewRNG(m.seed ^ saltOperator ^ opSalt(op.ID) ^ uint64(host)*hostMix)
	out, err := op.mutate(der, m.donors, rng)
	if err != nil {
		return nil, fmt.Errorf("certmutate: operator %s: %w", op.ID, err)
	}
	return out, nil
}

// MutateDER applies the host's scheduled mutation to der. It returns the
// (possibly unchanged) bytes, the operator used and whether a mutation
// happened. When the drawn operator cannot change this particular certificate
// (for example clearing an already-empty subject) the fallback operator is
// substituted deterministically, so the configured fraction holds for any
// population.
func (m *Mutator) MutateDER(host int, der []byte) ([]byte, Operator, bool, error) {
	op, ok := m.OperatorFor(host)
	if !ok {
		return der, Operator{}, false, nil
	}
	out, err := m.Apply(op, host, der)
	if errors.Is(err, errNoChange) {
		op = m.fallback
		out, err = m.Apply(op, host, der)
	}
	if err != nil {
		return nil, op, false, err
	}
	return out, op, true, nil
}

// Rewrite applies the host's scheduled mutation to a parsed certificate and
// re-parses the result through x509lite. Population operators guarantee
// parseability; a failure here is a mutator bug and is surfaced as an error.
func (m *Mutator) Rewrite(host int, c *x509lite.Certificate) (*x509lite.Certificate, error) {
	der, op, mutated, err := m.MutateDER(host, c.Raw)
	if err != nil {
		return nil, err
	}
	if !mutated {
		return c, nil
	}
	out, perr := x509lite.Parse(der)
	if perr != nil {
		return nil, fmt.Errorf("certmutate: operator %s produced unparseable DER: %w", op.ID, perr)
	}
	return out, nil
}

// opSalt hashes an operator ID into the seed domain (FNV-1a).
func opSalt(id string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}

// BatteryCert builds the reference battery base: a minimal well-formed
// self-signed leaf whose context-free certlint findings are exactly
// {revocation_missing, self_signed}. Every operator's MustTrip/MustNotTrip
// contract is evaluated against mutations of this certificate, so additions to
// it are version-bump events for the whole registry.
func BatteryCert() (*x509lite.Certificate, error) {
	seed := make([]byte, ed25519.SeedSize)
	copy(seed, "certmutate battery base cert 001")
	priv := ed25519.NewKeyFromSeed(seed)
	pub := priv.Public().(ed25519.PublicKey)
	name := x509lite.Name{
		Organization: "Mutation Battery",
		CommonName:   "mutant-base.example",
	}
	der, err := x509lite.CreateCertificate(&x509lite.Template{
		Version:      3,
		SerialNumber: big.NewInt(4097),
		Subject:      name,
		Issuer:       name,
		NotBefore:    time.Date(2013, 6, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:     time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC),
		DNSNames:     []string{"mutant-base.example"},
		KeyUsage:     0x80, // digitalSignature
	}, pub, priv)
	if err != nil {
		return nil, fmt.Errorf("certmutate: building battery cert: %w", err)
	}
	return x509lite.Parse(der)
}
