// Package certmutate is a seeded, deterministic frankencert-style
// certificate mutator: a registry of versioned mutation operators that
// rewrite real DER certificates into the malformed shapes the paper's corpus
// is full of — absurd versions and serials, inverted validity windows,
// donor-cert field swaps, duplicated and truncated extensions, oversized
// OIDs, pathological name lengths, non-minimal ASN.1 integers.
//
// The mutator exists to grow the devicesim population past
// valid-by-construction: ParsEval and DRLGENCERT both showed that parser
// disagreement on mutated real-world certificates is where the security bugs
// live, and the repo's differential, lint and chaos harnesses all consume
// this package's output (see DESIGN.md "Mutation model & determinism").
//
// # Determinism contract
//
// Every mutation is a pure function of (mutator seed, global host index,
// operator): whether a host mutates, which operator it draws and every random
// byte the operator consumes derive from stats.NewRNG seeded by those values
// alone. No call order, chunk size or worker count can change the outcome, so
// a mutated population is bit-identical under the streaming Generator.Next(n)
// contract at any batching — the same guarantee the rest of the pipeline
// already makes.
//
// # Operator classes
//
// Operators split into two classes with different downstream contracts:
//
//   - Population operators produce certificates x509lite still parses. Only
//     these are eligible for population injection (devicesim's MutateFrac),
//     because the scanner, the lint stage and the snapshot loader all re-parse
//     served DER and treat a parse failure as a pipeline bug.
//   - Hostile operators produce DER that both x509lite and strict parsers must
//     cleanly reject (truncation, trailing garbage, non-minimal encodings).
//     They exist for the differential harness and the fuzz seed corpora, never
//     for the served population.
//
// The package depends only on asn1der, stats and x509lite; repolint pins it
// below cmd/* and bans it from wire, snapshot and core, so mutation stays a
// population-generation concern and can never leak into the measurement path.
package certmutate
