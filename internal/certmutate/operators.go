package certmutate

import (
	"bytes"
	"errors"
	"fmt"
	"math/big"
	"sort"
	"strings"
	"time"

	"securepki/internal/asn1der"
	"securepki/internal/stats"
)

// Class partitions operators by their downstream contract; see the package
// comment.
type Class uint8

const (
	// Population operators keep the certificate x509lite-parseable.
	Population Class = iota
	// Hostile operators break the DER framing itself; every parser in the
	// repo (and crypto/x509) must reject the output cleanly.
	Hostile
)

// String renders the class for goldens and triage tables.
func (c Class) String() string {
	if c == Hostile {
		return "hostile"
	}
	return "population"
}

// Operator is one registered mutation: a stable ID, a version bumped whenever
// the rewrite changes (mutated populations are reproducible artifacts, so
// operator identity matters exactly like certlint linter identity), a class,
// and the lint expectations the mutation↔lint golden matrix pins.
type Operator struct {
	// ID is the stable registry key, unique and lowercase snake_case.
	ID string
	// Version starts at 1 and is bumped whenever the rewrite's output bytes
	// change for any input.
	Version int
	// Class declares the parseability contract; see Class.
	Class Class
	// Describe explains the mutation (surfaced by the triage table).
	Describe string
	// MustTrip lists certlint linter IDs a mutant of a well-formed leaf (the
	// matrix test's reference battery) must trigger; MustNotTrip lists IDs it
	// must not. Both are evaluated context-free (no population KeyCount).
	MustTrip    []string
	MustNotTrip []string

	mutate func(der []byte, donors *Donors, rng *stats.RNG) ([]byte, error)
}

// errNoChange reports an operator whose rewrite left the input bytes intact
// (e.g. clearing an already-empty subject). The Mutator falls back to a
// guaranteed-change operator so the configured malformed fraction holds.
var errNoChange = errors.New("certmutate: operator produced an unchanged certificate")

// fallbackOperatorID is the deterministic substitute when a drawn operator
// cannot change a particular certificate: version_absurd changes any input
// whose version is not already 99, which no generator in this repo emits.
const fallbackOperatorID = "version_absurd"

// overlongCN is the pathological-length payload: ~2.1 KB of CN forces
// long-form lengths through the attribute, RDN, name and TBS framing.
var overlongCN = strings.Repeat("frankencert-overlong.", 100)

// registry returns the full operator battery, ID-sorted. It builds fresh
// slices so callers can filter freely.
func registry() []Operator {
	ops := []Operator{
		{
			ID: "version_absurd", Version: 1, Class: Population,
			Describe:    "sets the X.509 version to 99, far beyond the defined 1..3 range",
			MustTrip:    []string{"version_bogus"},
			MustNotTrip: []string{"version_v1_leaf"},
			mutate: func(der []byte, _ *Donors, _ *stats.RNG) ([]byte, error) {
				return rewrite(der, func(p *certParts) error {
					p.setVersion(99)
					return nil
				})
			},
		},
		{
			ID: "serial_negative", Version: 1, Class: Population,
			Describe:    "negates the serial number (RFC 5280 requires a positive integer)",
			MustTrip:    []string{"serial_nonpositive"},
			MustNotTrip: []string{"serial_absurd_length"},
			mutate: func(der []byte, _ *Donors, _ *stats.RNG) ([]byte, error) {
				return rewrite(der, func(p *certParts) error {
					s, err := p.readSerial()
					if err != nil {
						return err
					}
					neg := new(big.Int).Neg(new(big.Int).Abs(s))
					if neg.Sign() == 0 {
						neg = big.NewInt(-1)
					}
					p.setSerial(neg)
					return nil
				})
			},
		},
		{
			ID: "serial_oversized", Version: 1, Class: Population,
			Describe:    "replaces the serial with a 25-octet value, past RFC 5280's 20-octet cap",
			MustTrip:    []string{"serial_absurd_length"},
			MustNotTrip: []string{"serial_nonpositive"},
			mutate: func(der []byte, _ *Donors, rng *stats.RNG) ([]byte, error) {
				return rewrite(der, func(p *certParts) error {
					b := make([]byte, 25)
					for i := range b {
						b[i] = byte(rng.Uint64())
					}
					b[0] = (b[0] | 0x01) &^ 0x80 // positive, leading octet non-zero
					p.setSerial(new(big.Int).SetBytes(b))
					return nil
				})
			},
		},
		{
			ID: "validity_inverted", Version: 1, Class: Population,
			Describe:    "swaps NotBefore and NotAfter so the validity window is negative",
			MustTrip:    []string{"validity_negative"},
			MustNotTrip: []string{"validity_excessive"},
			mutate: func(der []byte, _ *Donors, _ *stats.RNG) ([]byte, error) {
				return rewrite(der, func(p *certParts) error {
					nb, na, err := p.validityTimes()
					if err != nil {
						return err
					}
					p.setValidity(na, nb)
					return nil
				})
			},
		},
		{
			ID: "validity_y9999", Version: 1, Class: Population,
			Describe:    "pushes NotAfter to 9999-12-31, the far edge of GeneralizedTime",
			MustTrip:    []string{"validity_beyond_y3000", "validity_excessive"},
			MustNotTrip: []string{"validity_negative", "time_encoding_mismatch"},
			mutate: func(der []byte, _ *Donors, _ *stats.RNG) ([]byte, error) {
				return rewrite(der, func(p *certParts) error {
					nb, _, err := p.validityTimes()
					if err != nil {
						return err
					}
					var e asn1der.Encoder
					e.GeneralizedTime(time.Date(9999, 12, 31, 23, 59, 59, 0, time.UTC))
					p.setValidity(nb, e.Bytes())
					return nil
				})
			},
		},
		{
			ID: "time_generalized", Version: 1, Class: Population,
			Describe:    "re-encodes both validity times as GeneralizedTime, violating RFC 5280's pre-2050 UTCTime rule",
			MustTrip:    []string{"time_encoding_mismatch"},
			MustNotTrip: []string{"validity_negative"},
			mutate: func(der []byte, _ *Donors, _ *stats.RNG) ([]byte, error) {
				return rewrite(der, func(p *certParts) error {
					nbRaw, naRaw, err := p.validityTimes()
					if err != nil {
						return err
					}
					regen := func(raw []byte) ([]byte, error) {
						d := *asn1der.NewDecoder(raw)
						t, err := d.Time()
						if err != nil {
							return nil, err
						}
						var e asn1der.Encoder
						e.GeneralizedTime(t)
						return e.Bytes(), nil
					}
					nb, err := regen(nbRaw)
					if err != nil {
						return err
					}
					na, err := regen(naRaw)
					if err != nil {
						return err
					}
					p.setValidity(nb, na)
					return nil
				})
			},
		},
		{
			ID: "name_swap_issuer", Version: 1, Class: Population,
			Describe:    "frankencert field swap: replaces the issuer name with a donor certificate's subject",
			MustNotTrip: []string{"self_signed"},
			mutate: func(der []byte, donors *Donors, rng *stats.RNG) ([]byte, error) {
				donor := donors.pick(rng)
				return rewrite(der, func(p *certParts) error {
					p.issuer = donor.subject
					return nil
				})
			},
		},
		{
			ID: "name_swap_subject", Version: 1, Class: Population,
			Describe:    "frankencert field swap: replaces the subject with a donor's CA-styled name",
			MustTrip:    []string{"basicconstraints_missing_ca"},
			MustNotTrip: []string{"subject_empty", "subject_ip"},
			mutate: func(der []byte, donors *Donors, rng *stats.RNG) ([]byte, error) {
				donor := donors.pick(rng)
				return rewrite(der, func(p *certParts) error {
					p.subject = donor.subject
					return nil
				})
			},
		},
		{
			ID: "spki_swap", Version: 1, Class: Population,
			Describe: "frankencert field swap: replaces the SubjectPublicKeyInfo with a donor's key",
			mutate: func(der []byte, donors *Donors, rng *stats.RNG) ([]byte, error) {
				donor := donors.pick(rng)
				return rewrite(der, func(p *certParts) error {
					p.spki = donor.spki
					return nil
				})
			},
		},
		{
			ID: "subject_clear", Version: 1, Class: Population,
			Describe:    "empties the subject entirely (925k such certs in the paper's corpus)",
			MustTrip:    []string{"subject_empty"},
			MustNotTrip: []string{"subject_ip", "subject_private_ip"},
			mutate: func(der []byte, _ *Donors, _ *stats.RNG) ([]byte, error) {
				return rewrite(der, func(p *certParts) error {
					p.subject = []byte{0x30, 0x00}
					return nil
				})
			},
		},
		{
			ID: "cn_overlong", Version: 1, Class: Population,
			Describe:    "replaces the subject with a ~2 KB Common Name, forcing long-form lengths through every enclosing frame",
			MustNotTrip: []string{"subject_empty"},
			mutate: func(der []byte, _ *Donors, _ *stats.RNG) ([]byte, error) {
				return rewrite(der, func(p *certParts) error {
					p.subject = encodeCNName(overlongCN)
					return nil
				})
			},
		},
		{
			ID: "san_empty_dns", Version: 1, Class: Population,
			Describe:    "rewrites the SAN to hold a zero-length dNSName next to a valid one",
			MustTrip:    []string{"dns_name_malformed"},
			MustNotTrip: []string{"san_missing", "san_duplicate"},
			mutate: func(der []byte, _ *Donors, _ *stats.RNG) ([]byte, error) {
				return rewrite(der, func(p *certParts) error {
					p.ensureV3()
					var v asn1der.Encoder
					v.Sequence(func(e *asn1der.Encoder) {
						e.ContextImplicitPrimitive(2, nil) // zero-length dNSName
						e.ContextImplicitPrimitive(2, []byte("mutant.example"))
					})
					return replaceOrAppendExtension(p, oidExtSAN, encodeExtension(oidExtSAN, false, v.Bytes()))
				})
			},
		},
		{
			ID: "ext_duplicate", Version: 1, Class: Population,
			Describe:    "duplicates an existing extension (the SAN when present), yielding two extensions with one OID",
			MustTrip:    []string{"san_duplicate"},
			MustNotTrip: []string{"san_missing"},
			mutate: func(der []byte, _ *Donors, _ *stats.RNG) ([]byte, error) {
				return rewrite(der, func(p *certParts) error {
					p.ensureV3()
					exts, err := p.extensionList()
					if err != nil {
						return err
					}
					if len(exts) == 0 {
						var v asn1der.Encoder
						v.Null()
						ue := encodeExtension(oidUnknownExt, false, v.Bytes())
						p.setExtensionList([][]byte{ue, ue})
						return nil
					}
					dup := exts[len(exts)-1]
					if i := findExtension(exts, oidExtSAN); i >= 0 {
						dup = exts[i]
					}
					p.setExtensionList(append(exts, dup))
					return nil
				})
			},
		},
		{
			ID: "ext_unknown_truncated", Version: 1, Class: Population,
			Describe: "appends an unknown-OID extension whose value is a truncated TLV (inner length overruns the content)",
			mutate: func(der []byte, _ *Donors, _ *stats.RNG) ([]byte, error) {
				return rewrite(der, func(p *certParts) error {
					p.ensureV3()
					exts, err := p.extensionList()
					if err != nil {
						return err
					}
					// SEQUENCE claiming 16 content bytes with only 2 present;
					// the outer OCTET STRING frames it correctly, so parsers
					// that skip unknown extensions never notice.
					truncated := []byte{0x30, 0x10, 0x04, 0x01}
					p.setExtensionList(append(exts, encodeExtension(oidUnknownExt, false, truncated)))
					return nil
				})
			},
		},
		{
			ID: "ext_oid_oversized", Version: 1, Class: Population,
			Describe: "appends an extension whose OID carries 38 arcs near 2^24 (~120 bytes of OID)",
			mutate: func(der []byte, _ *Donors, _ *stats.RNG) ([]byte, error) {
				return rewrite(der, func(p *certParts) error {
					p.ensureV3()
					exts, err := p.extensionList()
					if err != nil {
						return err
					}
					oid := []int{1, 3, 6, 1, 4, 1}
					for i := 0; i < 32; i++ {
						oid = append(oid, 1<<24-1)
					}
					var v asn1der.Encoder
					v.Null()
					p.setExtensionList(append(exts, encodeExtension(oid, false, v.Bytes())))
					return nil
				})
			},
		},
		{
			ID: "keyusage_multibyte", Version: 1, Class: Population,
			Describe:    "installs a two-byte KeyUsage BIT STRING (keyCertSign|cRLSign|decipherOnly), wider than the one byte well-formed device certs use",
			MustTrip:    []string{"basicconstraints_missing_ca"},
			MustNotTrip: []string{"key_usage_missing"},
			mutate: func(der []byte, _ *Donors, _ *stats.RNG) ([]byte, error) {
				return rewrite(der, func(p *certParts) error {
					p.ensureV3()
					var v asn1der.Encoder
					v.BitString([]byte{0x05, 0x80})
					return replaceOrAppendExtension(p, oidExtKeyUsage, encodeExtension(oidExtKeyUsage, true, v.Bytes()))
				})
			},
		},
		{
			ID: "signature_truncate", Version: 1, Class: Population,
			Describe:    "truncates the signature BIT STRING to 5 octets; parsers accept it, verification cannot",
			MustNotTrip: []string{"self_signed"},
			mutate: func(der []byte, _ *Donors, _ *stats.RNG) ([]byte, error) {
				return rewrite(der, func(p *certParts) error {
					d := *asn1der.NewDecoder(p.sig)
					bits, err := d.BitString()
					if err != nil {
						return err
					}
					if len(bits) > 5 {
						bits = bits[:5]
					}
					var e asn1der.Encoder
					e.BitString(bits)
					p.sig = e.Bytes()
					return nil
				})
			},
		},

		// --- hostile class: framing-level damage both parsers must reject ---
		{
			ID: "serial_nonminimal", Version: 1, Class: Hostile,
			Describe: "pads the serial INTEGER with leading zero octets — a non-minimal encoding DER forbids",
			mutate: func(der []byte, _ *Donors, _ *stats.RNG) ([]byte, error) {
				return rewrite(der, func(p *certParts) error {
					d := *asn1der.NewDecoder(p.serial)
					_, content, err := d.ReadAny()
					if err != nil {
						return err
					}
					pad := []byte{0x00}
					if len(content) > 0 && content[0]&0x80 != 0 {
						// A single zero would make a negative value positive —
						// the minimal form. Two keep it non-minimal.
						pad = []byte{0x00, 0x00}
					}
					p.serial = rawTLV(asn1der.TagInteger, append(pad, content...))
					return nil
				})
			},
		},
		{
			ID: "len_nonminimal", Version: 1, Class: Hostile,
			Describe: "re-encodes the version element's length in two-byte long form with a leading zero — non-minimal, so strict DER readers reject",
			mutate: func(der []byte, _ *Donors, _ *stats.RNG) ([]byte, error) {
				return rewrite(der, func(p *certParts) error {
					p.ensureV3()
					d := *asn1der.NewDecoder(p.version)
					_, content, err := d.ReadAny()
					if err != nil {
						return err
					}
					if len(content) > 0xff {
						return errors.New("certmutate: version element too large to re-frame")
					}
					p.version = append([]byte{tagContextExplicit(0), 0x82, 0x00, byte(len(content))}, content...)
					return nil
				})
			},
		},
		{
			ID: "truncated_tail", Version: 1, Class: Hostile,
			Describe: "drops the last 7 bytes, leaving the outer SEQUENCE length pointing past the end",
			mutate: func(der []byte, _ *Donors, _ *stats.RNG) ([]byte, error) {
				if len(der) <= 16 {
					return nil, errors.New("certmutate: certificate too short to truncate")
				}
				return append([]byte(nil), der[:len(der)-7]...), nil
			},
		},
		{
			ID: "trailing_garbage", Version: 1, Class: Hostile,
			Describe: "appends 4 garbage bytes after the certificate; DER documents must end exactly",
			mutate: func(der []byte, _ *Donors, _ *stats.RNG) ([]byte, error) {
				out := make([]byte, 0, len(der)+4)
				out = append(out, der...)
				return append(out, 0xde, 0xad, 0xbe, 0xef), nil
			},
		},
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].ID < ops[j].ID })
	return ops
}

// Registry returns every operator, ID-sorted.
func Registry() []Operator { return registry() }

// PopulationOperators returns the ID-sorted population-class operators — the
// set eligible for devicesim injection.
func PopulationOperators() []Operator { return filterClass(Population) }

// HostileOperators returns the ID-sorted hostile-class operators.
func HostileOperators() []Operator { return filterClass(Hostile) }

func filterClass(c Class) []Operator {
	var out []Operator
	for _, op := range registry() {
		if op.Class == c {
			out = append(out, op)
		}
	}
	return out
}

// findExtension returns the index of the first Extension TLV carrying oid,
// or -1.
func findExtension(exts [][]byte, oid []int) int {
	want := oidContentsOf(oid)
	for i, ext := range exts {
		if bytes.Equal(extensionOID(ext), want) {
			return i
		}
	}
	return -1
}

// replaceOrAppendExtension swaps the extension carrying oid for repl, or
// appends repl when absent.
func replaceOrAppendExtension(p *certParts, oid []int, repl []byte) error {
	exts, err := p.extensionList()
	if err != nil {
		return err
	}
	if i := findExtension(exts, oid); i >= 0 {
		exts[i] = repl
	} else {
		exts = append(exts, repl)
	}
	p.setExtensionList(exts)
	return nil
}

// oidContentsOf encodes an OID and strips the 2-byte header, yielding the
// raw contents RawOID-style comparisons use.
func oidContentsOf(oid []int) []byte {
	var e asn1der.Encoder
	e.OID(oid)
	b := e.Bytes()
	if len(b) < 2 || int(b[1]) != len(b)-2 {
		panic(fmt.Sprintf("certmutate: unexpected OID encoding %x", b))
	}
	return b[2:]
}

// rawTLV frames content under tag with a minimal definite length. The
// encoder package deliberately has no raw-content TLV API (its typed methods
// guarantee valid DER); mutation is the one place that needs the loophole.
func rawTLV(tag byte, content []byte) []byte {
	out := []byte{tag}
	n := len(content)
	switch {
	case n < 0x80:
		out = append(out, byte(n))
	case n <= 0xff:
		out = append(out, 0x81, byte(n))
	default:
		out = append(out, 0x82, byte(n>>8), byte(n))
	}
	return append(out, content...)
}
