package certmutate

import (
	"crypto/ed25519"
	"encoding/binary"
	"fmt"
	"math/big"
	"time"

	"securepki/internal/stats"
	"securepki/internal/x509lite"
)

// Donors is the deterministic pool of well-formed certificates the
// field-swap operators splice material from (frankencert's defining move:
// recombining parts of real certificates). The pool is a pure function of
// its seed; every donor carries a distinct key, subject and validity so a
// swap always changes the target's bytes.
type Donors struct {
	certs []*x509lite.Certificate
	parts []*certParts
}

// numDonors is fixed: operators index donors with rng.Intn(numDonors), so
// growing the pool is a version-bump event for every swap operator.
const numDonors = 4

// newDonors builds the pool from seed.
func newDonors(seed uint64) (*Donors, error) {
	rng := stats.NewRNG(seed ^ 0x646f6e6f72730a01) // "donors" salt
	d := &Donors{
		certs: make([]*x509lite.Certificate, 0, numDonors),
		parts: make([]*certParts, 0, numDonors),
	}
	for i := 0; i < numDonors; i++ {
		kseed := make([]byte, ed25519.SeedSize)
		binary.LittleEndian.PutUint64(kseed, rng.Uint64())
		binary.LittleEndian.PutUint64(kseed[8:], rng.Uint64())
		priv := ed25519.NewKeyFromSeed(kseed)
		pub := priv.Public().(ed25519.PublicKey)
		name := x509lite.Name{
			Organization: "Frankencert Donors",
			// CA-styled on purpose: swapping a donor subject in must trip
			// certlint's basicconstraints_missing_ca name rule.
			CommonName: fmt.Sprintf("Frankencert Donor %d Root CA", i),
		}
		notBefore := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, rng.Intn(1000))
		der, err := x509lite.CreateCertificate(&x509lite.Template{
			Version:      3,
			SerialNumber: new(big.Int).SetUint64(rng.Uint64() >> 1),
			Subject:      name,
			Issuer:       name,
			NotBefore:    notBefore,
			NotAfter:     notBefore.AddDate(10, 0, 0),
			DNSNames:     []string{fmt.Sprintf("donor-%d.frankencert.example", i)},
		}, pub, priv)
		if err != nil {
			return nil, fmt.Errorf("certmutate: building donor %d: %w", i, err)
		}
		cert, err := x509lite.Parse(der)
		if err != nil {
			return nil, fmt.Errorf("certmutate: parsing donor %d: %w", i, err)
		}
		parts, err := splitCert(der)
		if err != nil {
			return nil, fmt.Errorf("certmutate: splitting donor %d: %w", i, err)
		}
		d.certs = append(d.certs, cert)
		d.parts = append(d.parts, parts)
	}
	return d, nil
}

// pick draws one donor; the draw consumes exactly one rng value so operator
// encodings stay stable as long as numDonors does.
func (d *Donors) pick(rng *stats.RNG) *certParts {
	return d.parts[rng.Intn(numDonors)]
}

// Certs exposes the parsed donor certificates (fuzz and matrix harnesses use
// them as additional mutation bases).
func (d *Donors) Certs() []*x509lite.Certificate { return d.certs }
