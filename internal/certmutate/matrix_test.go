package certmutate_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"securepki/internal/certlint"
	"securepki/internal/certmutate"
	"securepki/internal/x509lite"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata goldens")

// matrixSeed pins the matrix corpus; changing it is a golden-regeneration
// event, exactly like bumping an operator version.
const matrixSeed = 20160814 // the paper's IMC 2016 submission era

// batteryMutants applies every population operator to the reference battery
// cert and returns (operator, mutant) pairs in registry order.
func batteryMutants(t *testing.T, m *certmutate.Mutator) []struct {
	Op   certmutate.Operator
	Cert *x509lite.Certificate
} {
	t.Helper()
	base, err := certmutate.BatteryCert()
	if err != nil {
		t.Fatalf("BatteryCert: %v", err)
	}
	var out []struct {
		Op   certmutate.Operator
		Cert *x509lite.Certificate
	}
	for _, op := range certmutate.PopulationOperators() {
		der, err := m.Apply(op, 0, base.Raw)
		if err != nil {
			t.Fatalf("%s: %v", op.ID, err)
		}
		c, err := x509lite.Parse(der)
		if err != nil {
			t.Fatalf("%s: mutant unparseable: %v", op.ID, err)
		}
		out = append(out, struct {
			Op   certmutate.Operator
			Cert *x509lite.Certificate
		}{op, c})
	}
	return out
}

// findingIDs lints one certificate context-free and returns the tripped
// linter IDs (sorted by the registry's own contract).
func findingIDs(c *x509lite.Certificate) []string {
	var ids []string
	for _, f := range certlint.Default().RunCert(c, nil, nil) {
		ids = append(ids, f.LintID)
	}
	return ids
}

// TestMutationLintMatrix is the bidirectional mutation↔finding contract: each
// operator must trip every linter it declares and none it excludes, and the
// battery base itself must stay minimal so the expectations mean something.
func TestMutationLintMatrix(t *testing.T) {
	base, err := certmutate.BatteryCert()
	if err != nil {
		t.Fatal(err)
	}
	baseIDs := findingIDs(base)
	if want := []string{"revocation_missing", "self_signed"}; !reflect.DeepEqual(baseIDs, want) {
		t.Fatalf("battery base findings drifted: got %v want %v\n(every operator expectation is relative to this baseline)", baseIDs, want)
	}

	m, err := certmutate.New(matrixSeed, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, mut := range batteryMutants(t, m) {
		got := map[string]bool{}
		for _, id := range findingIDs(mut.Cert) {
			got[id] = true
		}
		for _, id := range mut.Op.MustTrip {
			if !got[id] {
				t.Errorf("%s: must trip %s but did not (tripped %v)", mut.Op.ID, id, keys(got))
			}
		}
		for _, id := range mut.Op.MustNotTrip {
			if got[id] {
				t.Errorf("%s: must NOT trip %s but did (tripped %v)", mut.Op.ID, id, keys(got))
			}
		}
		// Expectations must reference real linters, or the matrix rots.
		for _, id := range append(append([]string{}, mut.Op.MustTrip...), mut.Op.MustNotTrip...) {
			if _, ok := certlint.Default().Lookup(id); !ok {
				t.Errorf("%s: expectation names unknown linter %s", mut.Op.ID, id)
			}
		}
	}
}

// TestMutationLintMatrixGolden pins the full operator → findings table as a
// byte-stable golden, and proves it is identical at workers 1, 4 and 16.
func TestMutationLintMatrixGolden(t *testing.T) {
	m, err := certmutate.New(matrixSeed, 1)
	if err != nil {
		t.Fatal(err)
	}
	muts := batteryMutants(t, m)

	certs := make([]*x509lite.Certificate, len(muts))
	for i, mu := range muts {
		certs[i] = mu.Cert
	}
	var renders []string
	for _, workers := range []int{1, 4, 16} {
		results := certlint.Default().RunCorpus(certs, nil, certlint.Options{Workers: workers})
		byFP := map[x509lite.Fingerprint][]string{}
		for _, cf := range results {
			var ids []string
			for _, f := range cf.Findings {
				ids = append(ids, f.LintID)
			}
			byFP[cf.Fingerprint] = ids
		}
		var b strings.Builder
		b.WriteString("# operator (class, version): tripped linter IDs on the battery mutant\n")
		b.WriteString(fmt.Sprintf("# mutator seed %d; regenerate with: go test ./internal/certmutate -run MatrixGolden -update\n", matrixSeed))
		for _, mu := range muts {
			fmt.Fprintf(&b, "%s (%s, v%d): %s\n",
				mu.Op.ID, mu.Op.Class, mu.Op.Version,
				strings.Join(byFP[mu.Cert.Fingerprint()], " "))
		}
		renders = append(renders, b.String())
	}
	for i := 1; i < len(renders); i++ {
		if renders[i] != renders[0] {
			t.Fatalf("matrix differs between worker counts 1 and %d", []int{1, 4, 16}[i])
		}
	}

	golden := filepath.Join("testdata", "lint_matrix.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(renders[0]), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(want, []byte(renders[0])) {
		t.Errorf("matrix drifted from golden:\n--- got ---\n%s--- want ---\n%s", renders[0], want)
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
