package certmutate

import (
	"bytes"
	"strings"
	"testing"

	"securepki/internal/x509lite"
)

func batteryDER(t *testing.T) []byte {
	t.Helper()
	c, err := BatteryCert()
	if err != nil {
		t.Fatalf("BatteryCert: %v", err)
	}
	return c.Raw
}

func TestSplitAssembleRoundTrip(t *testing.T) {
	bases := [][]byte{batteryDER(t)}
	m, err := New(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range m.Donors().Certs() {
		bases = append(bases, d.Raw)
	}
	for i, der := range bases {
		p, err := splitCert(der)
		if err != nil {
			t.Fatalf("base %d: split: %v", i, err)
		}
		if got := p.assemble(); !bytes.Equal(got, der) {
			t.Errorf("base %d: assemble not byte-identical (%d vs %d bytes)", i, len(got), len(der))
		}
	}
}

func TestRegistryInvariants(t *testing.T) {
	ops := Registry()
	if len(ops) < 15 {
		t.Fatalf("registry has %d operators, the issue demands ~15+", len(ops))
	}
	seen := map[string]bool{}
	for i, op := range ops {
		if op.ID == "" || op.ID != strings.ToLower(op.ID) {
			t.Errorf("operator %d: bad ID %q", i, op.ID)
		}
		if seen[op.ID] {
			t.Errorf("duplicate operator ID %s", op.ID)
		}
		seen[op.ID] = true
		if i > 0 && ops[i-1].ID >= op.ID {
			t.Errorf("registry not ID-sorted at %s", op.ID)
		}
		if op.Version < 1 {
			t.Errorf("operator %s: version %d < 1", op.ID, op.Version)
		}
		if op.Describe == "" {
			t.Errorf("operator %s: no description", op.ID)
		}
		if op.mutate == nil {
			t.Errorf("operator %s: no mutate func", op.ID)
		}
		if op.Class == Hostile && (len(op.MustTrip) > 0 || len(op.MustNotTrip) > 0) {
			t.Errorf("operator %s: hostile outputs are never linted, lint expectations are dead", op.ID)
		}
	}
	if len(PopulationOperators())+len(HostileOperators()) != len(ops) {
		t.Error("class filters do not partition the registry")
	}
}

// TestPopulationOperatorsKeepParseability is the population-class contract:
// every operator output over the battery and donor bases must re-parse.
func TestPopulationOperatorsKeepParseability(t *testing.T) {
	m, err := New(42, 1)
	if err != nil {
		t.Fatal(err)
	}
	bases := [][]byte{batteryDER(t)}
	for _, d := range m.Donors().Certs() {
		bases = append(bases, d.Raw)
	}
	for _, op := range PopulationOperators() {
		for bi, base := range bases {
			out, err := m.Apply(op, bi, base)
			if err != nil {
				// Swap operators may no-op when a donor base draws itself as
				// the donor; the population path handles this via fallback.
				if bi > 0 && strings.Contains(err.Error(), "unchanged") {
					continue
				}
				t.Errorf("%s on base %d: %v", op.ID, bi, err)
				continue
			}
			if bytes.Equal(out, base) {
				t.Errorf("%s on base %d: returned unchanged bytes without error", op.ID, bi)
				continue
			}
			if _, perr := x509lite.Parse(out); perr != nil {
				t.Errorf("%s on base %d: mutant unparseable: %v", op.ID, bi, perr)
			}
		}
	}
}

// TestHostileOperatorsBreakParseability is the hostile-class contract:
// x509lite must cleanly reject every output (no panic, non-nil error).
func TestHostileOperatorsBreakParseability(t *testing.T) {
	m, err := New(42, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := batteryDER(t)
	for _, op := range HostileOperators() {
		out, err := m.Apply(op, 0, base)
		if err != nil {
			t.Errorf("%s: %v", op.ID, err)
			continue
		}
		if _, perr := x509lite.Parse(out); perr == nil {
			t.Errorf("%s: x509lite accepted hostile output", op.ID)
		}
	}
}

// TestMutateDERDeterminism pins the pure-function contract: two mutators with
// the same seed agree byte-for-byte on every host, regardless of the order
// hosts are visited in.
func TestMutateDERDeterminism(t *testing.T) {
	base := batteryDER(t)
	a, _ := New(1234, 0.5)
	b, _ := New(1234, 0.5)
	const hosts = 200
	got := make([][]byte, hosts)
	mutated := 0
	for host := 0; host < hosts; host++ {
		out, _, ok, err := a.MutateDER(host, base)
		if err != nil {
			t.Fatalf("host %d: %v", host, err)
		}
		if ok {
			mutated++
		}
		got[host] = out
	}
	// Reverse visiting order on the second mutator.
	for host := hosts - 1; host >= 0; host-- {
		out, _, _, err := b.MutateDER(host, base)
		if err != nil {
			t.Fatalf("host %d (replay): %v", host, err)
		}
		if !bytes.Equal(out, got[host]) {
			t.Fatalf("host %d: bytes differ across identically-seeded mutators", host)
		}
	}
	if mutated < hosts/4 || mutated > 3*hosts/4 {
		t.Errorf("frac 0.5 mutated %d/%d hosts, schedule looks broken", mutated, hosts)
	}
	// A different seed must not reproduce the same schedule.
	c, _ := New(1235, 0.5)
	same := 0
	for host := 0; host < hosts; host++ {
		out, _, _, err := c.MutateDER(host, base)
		if err != nil {
			t.Fatalf("host %d (seed 1235): %v", host, err)
		}
		if bytes.Equal(out, got[host]) {
			same++
		}
	}
	if same == hosts {
		t.Error("changing the seed changed nothing")
	}
}

// TestOperatorCoverageAtFullFraction proves the schedule reaches every
// population operator (frac 1 over enough hosts).
func TestOperatorCoverageAtFullFraction(t *testing.T) {
	m, _ := New(99, 1)
	hit := map[string]int{}
	for host := 0; host < 600; host++ {
		op, ok := m.OperatorFor(host)
		if !ok {
			t.Fatalf("host %d not mutated at frac 1", host)
		}
		hit[op.ID]++
	}
	for _, op := range PopulationOperators() {
		if hit[op.ID] == 0 {
			t.Errorf("operator %s never drawn in 600 hosts", op.ID)
		}
	}
}

func TestFractionValidation(t *testing.T) {
	for _, bad := range []float64{-0.1, 1.01} {
		if _, err := New(1, bad); err == nil {
			t.Errorf("frac %v accepted", bad)
		}
	}
	m, err := New(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.OperatorFor(3); ok {
		t.Error("frac 0 still mutates")
	}
}

// TestFallbackOnNoChange: clearing an already-empty subject cannot change the
// cert, so the mutator must substitute the fallback operator rather than fail
// or silently shrink the malformed fraction.
func TestFallbackOnNoChange(t *testing.T) {
	m, _ := New(5, 1)
	base := batteryDER(t)
	var cleared []byte
	var err error
	for _, op := range PopulationOperators() {
		if op.ID == "subject_clear" {
			cleared, err = m.Apply(op, 0, base)
		}
	}
	if err != nil || cleared == nil {
		t.Fatalf("preparing empty-subject base: %v", err)
	}
	// Find a host scheduled for subject_clear and mutate the already-cleared
	// cert: the result must come from the fallback operator.
	for host := 0; host < 5000; host++ {
		op, ok := m.OperatorFor(host)
		if !ok || op.ID != "subject_clear" {
			continue
		}
		out, used, mutated, err := m.MutateDER(host, cleared)
		if err != nil {
			t.Fatalf("host %d: %v", host, err)
		}
		if !mutated || used.ID != fallbackOperatorID {
			t.Fatalf("host %d: fallback not applied (op %s, mutated %v)", host, used.ID, mutated)
		}
		if bytes.Equal(out, cleared) {
			t.Fatal("fallback produced unchanged bytes")
		}
		return
	}
	t.Fatal("no host drew subject_clear in 5000 tries")
}

// TestDuplicateSANAccumulates is the regression test for the x509lite fix
// this operator forced: a certificate carrying the SAN extension twice used to
// have its second instance silently overwrite the first (the pre-size reset in
// parseExtensionValue); the lenient parser must accumulate names from both so
// certlint's san_duplicate can see the duplication.
func TestDuplicateSANAccumulates(t *testing.T) {
	m, _ := New(5, 1)
	base := batteryDER(t)
	for _, op := range PopulationOperators() {
		if op.ID != "ext_duplicate" {
			continue
		}
		out, err := m.Apply(op, 0, base)
		if err != nil {
			t.Fatal(err)
		}
		c, err := x509lite.Parse(out)
		if err != nil {
			t.Fatal(err)
		}
		want := []string{"mutant-base.example", "mutant-base.example"}
		if len(c.DNSNames) != 2 || c.DNSNames[0] != want[0] || c.DNSNames[1] != want[1] {
			t.Fatalf("duplicated SAN yielded DNSNames %v, want %v", c.DNSNames, want)
		}
		return
	}
	t.Fatal("ext_duplicate operator missing")
}

// TestBatteryCertBaseline pins the battery base itself: well-formed, v3,
// parseable, stable bytes across calls.
func TestBatteryCertBaseline(t *testing.T) {
	a, err := BatteryCert()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := BatteryCert()
	if !bytes.Equal(a.Raw, b.Raw) {
		t.Error("battery cert not deterministic")
	}
	if a.Version != 3 || len(a.DNSNames) != 1 || !a.SelfSigned() {
		t.Errorf("battery cert shape drifted: v%d SANs %v selfSigned %v",
			a.Version, a.DNSNames, a.SelfSigned())
	}
}
