package scanstore

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"strings"
	"testing"
)

// v1Bytes serialises a small corpus in the v1 format.
func v1Bytes(t *testing.T) []byte {
	t.Helper()
	c := NewCorpus()
	for i := 0; i < 4; i++ {
		c.Intern(makeCert(t, "host.example", byte(40+i)))
	}
	obs := []Observation{{Cert: 0, IP: 1}, {Cert: 2, IP: 9}}
	if _, err := c.AddScan(UMich, day(0), obs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// gobV1 re-encodes a hand-built wire structure so tests can forge fields the
// honest writer never produces.
func gobV1(t *testing.T, wc wireCorpus) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if err := gob.NewEncoder(zw).Encode(&wc); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Hostile or damaged v1 input must fail with an explicit error, never a
// panic, and never by doing work (parsing, interning) before the version and
// length fields are judged.
func TestReadFromCorrupt(t *testing.T) {
	valid := v1Bytes(t)
	der := makeCert(t, "forged.example", 99).Raw

	cases := []struct {
		name    string
		input   []byte
		wantSub string
	}{
		{"empty", nil, "gzip"},
		{"not gzip", []byte("plain text, no corpus here"), "gzip"},
		{"truncated gzip header", valid[:5], "gzip"},
		{"truncated gzip body", valid[:len(valid)/2], "decode"},
		{"gob garbage", func() []byte {
			var buf bytes.Buffer
			zw := gzip.NewWriter(&buf)
			zw.Write([]byte("not a gob stream at all, sorry"))
			zw.Close()
			return buf.Bytes()
		}(), "decode"},
		{"future version", gobV1(t, wireCorpus{Version: 99, DERs: [][]byte{der}}), "unsupported corpus version"},
		{"empty cert record", gobV1(t, wireCorpus{Version: 1, DERs: [][]byte{{}}}), "length 0"},
		{"absurd cert record", gobV1(t, wireCorpus{Version: 1, DERs: [][]byte{make([]byte, maxWireDER+1)}}), "outside"},
		{"unparseable cert", gobV1(t, wireCorpus{Version: 1, DERs: [][]byte{{0xde, 0xad, 0xbe, 0xef}}}), "cert 0"},
		{"duplicate cert", gobV1(t, wireCorpus{Version: 1, DERs: [][]byte{der, der}}), "duplicate cert"},
		{"observation out of range", gobV1(t, wireCorpus{
			Version: 1,
			DERs:    [][]byte{der},
			Scans:   []wireScan{{Operator: 0, Time: day(0), Obs: []Observation{{Cert: 7, IP: 1}}}},
		}), "references cert"},
		{"scans out of order", gobV1(t, wireCorpus{
			Version: 1,
			DERs:    [][]byte{der},
			Scans:   []wireScan{{Time: day(3)}, {Time: day(1)}},
		}), "inserted after"},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadFrom(bytes.NewReader(tc.input))
			if err == nil {
				t.Fatal("corrupt input accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// The version gate must fire before any certificate is parsed: a future
// version with a deliberately unparseable certificate must report the
// version, not the parse failure.
func TestReadFromVersionCheckedFirst(t *testing.T) {
	_, err := ReadFrom(bytes.NewReader(gobV1(t, wireCorpus{
		Version: 2,
		DERs:    [][]byte{{0xff, 0xff}},
	})))
	if err == nil {
		t.Fatal("accepted")
	}
	if !strings.Contains(err.Error(), "unsupported corpus version 2") {
		t.Fatalf("want version error before cert parse, got %q", err)
	}
}
