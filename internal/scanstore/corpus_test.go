package scanstore

import (
	"bytes"
	"crypto/ed25519"
	"fmt"
	"math/big"
	"testing"
	"testing/quick"
	"time"

	"securepki/internal/netsim"
	"securepki/internal/truststore"
	"securepki/internal/x509lite"
)

var nextSerial int64 = 1

func makeCert(t testing.TB, cn string, seed byte) *x509lite.Certificate {
	t.Helper()
	s := make([]byte, ed25519.SeedSize)
	s[0] = seed
	s[1] = byte(nextSerial)
	priv := ed25519.NewKeyFromSeed(s)
	pub := priv.Public().(ed25519.PublicKey)
	nextSerial++
	der, err := x509lite.CreateCertificate(&x509lite.Template{
		Version:      3,
		SerialNumber: big.NewInt(nextSerial),
		Subject:      x509lite.Name{CommonName: cn},
		Issuer:       x509lite.Name{CommonName: cn},
		NotBefore:    time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:     time.Date(2033, 1, 1, 0, 0, 0, 0, time.UTC),
	}, pub, priv)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := x509lite.Parse(der)
	if err != nil {
		t.Fatal(err)
	}
	return cert
}

func day(n int) time.Time {
	return time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, n)
}

func TestInternDeduplicates(t *testing.T) {
	c := NewCorpus()
	cert := makeCert(t, "a.example", 1)
	id1 := c.Intern(cert)
	// Re-parse the same DER: same fingerprint, same ID.
	dup, _ := x509lite.Parse(cert.Raw)
	id2 := c.Intern(dup)
	if id1 != id2 {
		t.Errorf("identical certs got IDs %d and %d", id1, id2)
	}
	if c.NumCerts() != 1 {
		t.Errorf("NumCerts = %d", c.NumCerts())
	}
	other := c.Intern(makeCert(t, "b.example", 2))
	if other == id1 {
		t.Error("distinct certs share an ID")
	}
	if got, ok := c.Lookup(cert.Fingerprint()); !ok || got != id1 {
		t.Errorf("Lookup = %d, %v", got, ok)
	}
}

func TestAddScanOrdering(t *testing.T) {
	c := NewCorpus()
	if _, err := c.AddScan(UMich, day(5), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddScan(Rapid7, day(3), nil); err == nil {
		t.Error("out-of-order scan accepted")
	}
	if _, err := c.AddScan(Rapid7, day(5), nil); err != nil {
		t.Errorf("same-day scan rejected: %v", err)
	}
}

func TestLifetimeSemantics(t *testing.T) {
	c := NewCorpus()
	a := c.Intern(makeCert(t, "once.example", 3))
	b := c.Intern(makeCert(t, "weekly.example", 4))

	c.AddScan(UMich, day(0), []Observation{
		{Cert: a, IP: netsim.MakeIP(1, 2, 3, 4)},
		{Cert: b, IP: netsim.MakeIP(5, 6, 7, 8)},
	})
	c.AddScan(UMich, day(7), []Observation{
		{Cert: b, IP: netsim.MakeIP(5, 6, 7, 8)},
	})
	idx := c.BuildIndex()

	// Paper §5.1: single sighting → 1 day; sightings a week apart → 8 days.
	if lt, ok := idx.LifetimeDays(a); !ok || lt != 1 {
		t.Errorf("single-scan lifetime = %d, %v", lt, ok)
	}
	if lt, ok := idx.LifetimeDays(b); !ok || lt != 8 {
		t.Errorf("week-apart lifetime = %d, %v", lt, ok)
	}
}

func TestLifetimeUnseen(t *testing.T) {
	c := NewCorpus()
	id := c.Intern(makeCert(t, "ghost.example", 5))
	idx := c.BuildIndex()
	if _, ok := idx.LifetimeDays(id); ok {
		t.Error("unseen cert reported a lifetime")
	}
	if _, ok := idx.FirstSeen(id); ok {
		t.Error("unseen cert reported FirstSeen")
	}
	if _, ok := idx.LastSeen(id); ok {
		t.Error("unseen cert reported LastSeen")
	}
}

func TestIPsInScanAndMax(t *testing.T) {
	c := NewCorpus()
	id := c.Intern(makeCert(t, "shared.example", 6))
	ipA, ipB := netsim.MakeIP(10, 0, 0, 1), netsim.MakeIP(10, 0, 0, 2)
	c.AddScan(UMich, day(0), []Observation{
		{Cert: id, IP: ipA},
		{Cert: id, IP: ipB},
		{Cert: id, IP: ipA}, // duplicate sighting same scan, same IP
	})
	c.AddScan(UMich, day(3), []Observation{{Cert: id, IP: ipA}})
	idx := c.BuildIndex()

	ips := idx.IPsInScan(id, 0)
	if len(ips) != 2 || ips[0] != ipA || ips[1] != ipB {
		t.Errorf("IPsInScan = %v", ips)
	}
	if got := idx.MaxIPsInAnyScan(id); got != 2 {
		t.Errorf("MaxIPsInAnyScan = %d", got)
	}
	if got := idx.AvgIPsPerScan(id); got != 1.5 {
		t.Errorf("AvgIPsPerScan = %v", got)
	}
	scans := idx.ScansSeen(id)
	if len(scans) != 2 || scans[0] != 0 || scans[1] != 1 {
		t.Errorf("ScansSeen = %v", scans)
	}
}

func TestValidateClassifiesAndPoolsIntermediates(t *testing.T) {
	// Build a root + intermediate + leaf; the corpus must classify the leaf
	// valid via transvalid completion because the intermediate is interned.
	rootSeed := make([]byte, ed25519.SeedSize)
	rootSeed[0] = 0xaa
	rootPriv := ed25519.NewKeyFromSeed(rootSeed)
	rootPub := rootPriv.Public().(ed25519.PublicKey)
	rootDER, _ := x509lite.CreateCertificate(&x509lite.Template{
		Version: 3, SerialNumber: big.NewInt(1),
		Subject: x509lite.Name{CommonName: "Root"}, Issuer: x509lite.Name{CommonName: "Root"},
		NotBefore: day(0), NotAfter: day(4000),
		IsCA: true, IncludeBasicConstraints: true,
	}, rootPub, rootPriv)
	root, _ := x509lite.Parse(rootDER)

	interSeed := make([]byte, ed25519.SeedSize)
	interSeed[0] = 0xbb
	interPriv := ed25519.NewKeyFromSeed(interSeed)
	interPub := interPriv.Public().(ed25519.PublicKey)
	interDER, _ := x509lite.CreateCertificate(&x509lite.Template{
		Version: 3, SerialNumber: big.NewInt(2),
		Subject: x509lite.Name{CommonName: "Inter"}, Issuer: x509lite.Name{CommonName: "Root"},
		NotBefore: day(0), NotAfter: day(4000),
		IsCA: true, IncludeBasicConstraints: true,
	}, interPub, rootPriv)
	inter, _ := x509lite.Parse(interDER)

	leafSeed := make([]byte, ed25519.SeedSize)
	leafSeed[0] = 0xcc
	leafPriv := ed25519.NewKeyFromSeed(leafSeed)
	leafPub := leafPriv.Public().(ed25519.PublicKey)
	leafDER, _ := x509lite.CreateCertificate(&x509lite.Template{
		Version: 3, SerialNumber: big.NewInt(3),
		Subject: x509lite.Name{CommonName: "www.example.com"}, Issuer: x509lite.Name{CommonName: "Inter"},
		NotBefore: day(0), NotAfter: day(365),
	}, leafPub, interPriv)
	leaf, _ := x509lite.Parse(leafDER)

	selfDER, _ := x509lite.CreateCertificate(&x509lite.Template{
		Version: 3, SerialNumber: big.NewInt(4),
		Subject: x509lite.Name{CommonName: "192.168.1.1"}, Issuer: x509lite.Name{CommonName: "192.168.1.1"},
		NotBefore: day(0), NotAfter: day(8000),
	}, leafPub, leafPriv)
	self, _ := x509lite.Parse(selfDER)

	c := NewCorpus()
	leafID := c.Intern(leaf)
	c.Intern(inter)
	selfID := c.Intern(self)

	store := truststore.NewStore()
	store.AddRoot(root)
	counts := c.Validate(store)

	if c.Cert(leafID).Status != truststore.Valid {
		t.Errorf("transvalid leaf = %v", c.Cert(leafID).Status)
	}
	if c.Cert(selfID).Status != truststore.SelfSigned {
		t.Errorf("self-signed = %v", c.Cert(selfID).Status)
	}
	if counts[truststore.Valid] != 2 { // leaf + intermediate
		t.Errorf("valid count = %d", counts[truststore.Valid])
	}
	if counts[truststore.SelfSigned] != 1 {
		t.Errorf("self-signed count = %d", counts[truststore.SelfSigned])
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	c := NewCorpus()
	a := c.Intern(makeCert(t, "ser-a.example", 7))
	b := c.Intern(makeCert(t, "ser-b.example", 8))
	c.AddScan(UMich, day(0), []Observation{{Cert: a, IP: netsim.MakeIP(1, 1, 1, 1)}})
	c.AddScan(Rapid7, day(7), []Observation{
		{Cert: a, IP: netsim.MakeIP(1, 1, 1, 2)},
		{Cert: b, IP: netsim.MakeIP(2, 2, 2, 2)},
	})

	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumCerts() != 2 || back.NumScans() != 2 {
		t.Fatalf("round trip: %d certs, %d scans", back.NumCerts(), back.NumScans())
	}
	if back.Scan(1).Operator != Rapid7 || !back.Scan(1).Time.Equal(day(7)) {
		t.Errorf("scan meta lost: %+v", back.Scan(1))
	}
	if len(back.Scan(1).Obs) != 2 {
		t.Errorf("observations lost: %d", len(back.Scan(1).Obs))
	}
	// Fingerprints must survive: same certificates, same identity.
	if back.Cert(a).Cert.Fingerprint() != c.Cert(a).Cert.Fingerprint() {
		t.Error("fingerprint changed across serialisation")
	}
	idx := back.BuildIndex()
	if lt, _ := idx.LifetimeDays(a); lt != 8 {
		t.Errorf("lifetime after reload = %d", lt)
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("not gzip"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestOperatorString(t *testing.T) {
	if UMich.String() != "Univ. Michigan" || Rapid7.String() != "Rapid7" || Operator(9).String() != "unknown" {
		t.Error("operator labels wrong")
	}
}

func TestScanDay(t *testing.T) {
	c := NewCorpus()
	at := time.Date(2013, 5, 2, 17, 45, 0, 0, time.UTC)
	id, _ := c.AddScan(UMich, at, nil)
	want := time.Date(2013, 5, 2, 0, 0, 0, 0, time.UTC)
	if !c.Scan(id).Day().Equal(want) {
		t.Errorf("Day() = %v", c.Scan(id).Day())
	}
}

func TestMergeCorpora(t *testing.T) {
	shared := makeCert(t, "shared.example", 20)
	onlyA := makeCert(t, "only-a.example", 21)
	onlyB := makeCert(t, "only-b.example", 22)

	a := NewCorpus()
	idSharedA := a.Intern(shared)
	idOnlyA := a.Intern(onlyA)
	a.AddScan(UMich, day(0), []Observation{
		{Cert: idSharedA, IP: netsim.MakeIP(1, 1, 1, 1)},
		{Cert: idOnlyA, IP: netsim.MakeIP(1, 1, 1, 2)},
	})
	a.AddScan(UMich, day(10), []Observation{{Cert: idSharedA, IP: netsim.MakeIP(1, 1, 1, 1)}})

	b := NewCorpus()
	idOnlyB := b.Intern(onlyB)
	idSharedB := b.Intern(shared) // different internal ID than in a
	b.AddScan(Rapid7, day(5), []Observation{
		{Cert: idSharedB, IP: netsim.MakeIP(2, 2, 2, 2)},
		{Cert: idOnlyB, IP: netsim.MakeIP(2, 2, 2, 3)},
	})

	merged, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumCerts() != 3 {
		t.Fatalf("merged certs = %d, want 3 (shared deduplicated)", merged.NumCerts())
	}
	if merged.NumScans() != 3 {
		t.Fatalf("merged scans = %d", merged.NumScans())
	}
	// Chronological interleaving: day 0 (UMich), day 5 (Rapid7), day 10.
	if merged.Scan(0).Operator != UMich || merged.Scan(1).Operator != Rapid7 || merged.Scan(2).Operator != UMich {
		t.Error("scans not interleaved chronologically")
	}
	// The shared cert's sightings span both sources.
	id, ok := merged.Lookup(shared.Fingerprint())
	if !ok {
		t.Fatal("shared cert lost")
	}
	idx := merged.BuildIndex()
	if got := len(idx.ScansSeen(id)); got != 3 {
		t.Errorf("shared cert seen in %d scans, want 3", got)
	}
	if lt, _ := idx.LifetimeDays(id); lt != 11 {
		t.Errorf("merged lifetime = %d, want 11", lt)
	}
	// Inputs untouched.
	if a.NumCerts() != 2 || b.NumCerts() != 2 {
		t.Error("merge mutated its inputs")
	}
}

func TestMergeRejectsNil(t *testing.T) {
	if _, err := Merge(NewCorpus(), nil); err == nil {
		t.Error("nil input accepted")
	}
}

func TestMergeEmpty(t *testing.T) {
	m, err := Merge()
	if err != nil || m.NumCerts() != 0 || m.NumScans() != 0 {
		t.Errorf("empty merge: %v %d %d", err, m.NumCerts(), m.NumScans())
	}
}

// Property: lifetime is consistent with FirstSeen/LastSeen for arbitrary
// sighting patterns.
func TestLifetimeConsistencyProperty(t *testing.T) {
	f := func(scanGaps []uint8, present []bool) bool {
		c := NewCorpus()
		id := c.Intern(makeCert(t, "prop.example", 30))
		at := day(0)
		n := len(scanGaps)
		if n > 20 {
			n = 20
		}
		sawAny := false
		for i := 0; i < n; i++ {
			var obs []Observation
			if i < len(present) && present[i] {
				obs = []Observation{{Cert: id, IP: netsim.MakeIP(9, 9, 9, 9)}}
				sawAny = true
			}
			if _, err := c.AddScan(UMich, at, obs); err != nil {
				return false
			}
			at = at.AddDate(0, 0, int(scanGaps[i]%30)+1)
		}
		idx := c.BuildIndex()
		lt, ok := idx.LifetimeDays(id)
		if !sawAny {
			return !ok
		}
		if !ok || lt < 1 {
			return false
		}
		first, _ := idx.FirstSeen(id)
		last, _ := idx.LastSeen(id)
		want := int(last.Sub(first).Hours()/24) + 1
		return lt == want && !last.Before(first)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkIntern(b *testing.B) {
	certs := make([]*x509lite.Certificate, 64)
	for i := range certs {
		certs[i] = makeCert(b, fmt.Sprintf("bench-%d.example", i), byte(40+i))
	}
	c := NewCorpus()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Intern(certs[i%len(certs)])
	}
}

func BenchmarkBuildIndex(b *testing.B) {
	c := NewCorpus()
	ids := make([]CertID, 200)
	for i := range ids {
		ids[i] = c.Intern(makeCert(b, fmt.Sprintf("idx-%d.example", i), byte(i)))
	}
	for s := 0; s < 30; s++ {
		obs := make([]Observation, 0, len(ids))
		for i, id := range ids {
			obs = append(obs, Observation{Cert: id, IP: netsim.MakeIP(10, byte(s), byte(i), 1)})
		}
		c.AddScan(UMich, day(s*7), obs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.BuildIndex()
	}
}
