package scanstore

import (
	"fmt"
	"sort"
)

// Merge combines several corpora — e.g. one per operator, or per collection
// site — into one, exactly as the paper merged the UMich and Rapid7 datasets:
// certificates are re-deduplicated by fingerprint and the scan series are
// interleaved chronologically. The inputs are not modified. Validation
// statuses are not carried over; run Validate on the result.
func Merge(parts ...*Corpus) (*Corpus, error) {
	out := NewCorpus()
	type pending struct {
		op    Operator
		scan  *Scan
		remap []CertID // old ID -> new ID for the scan's source corpus
	}
	var all []pending
	for pi, part := range parts {
		if part == nil {
			return nil, fmt.Errorf("scanstore: merge input %d is nil", pi)
		}
		remap := make([]CertID, part.NumCerts())
		for _, rec := range part.Certs() {
			remap[rec.ID] = out.Intern(rec.Cert)
		}
		for _, scan := range part.Scans() {
			all = append(all, pending{op: scan.Operator, scan: scan, remap: remap})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].scan.Time.Before(all[j].scan.Time) })
	for _, p := range all {
		obs := make([]Observation, len(p.scan.Obs))
		for i, o := range p.scan.Obs {
			obs[i] = Observation{Cert: p.remap[o.Cert], IP: o.IP}
		}
		if _, err := out.AddScan(p.op, p.scan.Time, obs); err != nil {
			return nil, err
		}
	}
	return out, nil
}
