package scanstore

import (
	"encoding/binary"
	"fmt"

	"securepki/internal/extsort"
	"securepki/internal/netsim"
)

// ExtIndexConfig sizes the external-merge index build.
type ExtIndexConfig struct {
	// Workers pins the precompute fan-out (<= 0 means GOMAXPROCS).
	Workers int
	// MemBudget caps the sighting sorter's buffer in encoded bytes before it
	// spills a sorted run (<= 0 means extsort.DefaultMemBudget).
	MemBudget int64
	// Dir hosts the run shards ("" means the OS temp dir).
	Dir string
	// OnSpill, when non-nil, observes each spilled run (records, bytes).
	OnSpill func(records int, bytes int64)
	// FanIn, when non-nil, receives the merge fan-in just before the merge.
	FanIn func(n int)
}

// sightRec is one observation routed through the external sorter. Less
// orders by certificate only; the sorter's end-to-end stability then keeps
// each certificate's sightings in the scan-major insertion order, which is
// exactly the order BuildIndexWorkers produces.
type sightRec struct {
	cert uint32
	scan uint32
	ip   uint32
}

// BuildIndexExt builds the same Index as BuildIndexWorkers through an
// external-merge sort: observations stream into a budgeted sorter in
// scan-major order, sorted runs spill to checksummed temp shards, and the
// k-way merge fills the per-certificate sighting lists without ever holding
// per-worker shard copies of the corpus. The result is identical to the
// in-memory build — the equivalence test pins it — at a resident cost of
// one sorter buffer plus the final sighting slices.
func (c *Corpus) BuildIndexExt(cfg ExtIndexConfig) (*Index, error) {
	sorter, err := extsort.NewSorter(extsort.Config[sightRec]{
		Size: 12,
		Encode: func(dst []byte, r sightRec) {
			binary.LittleEndian.PutUint32(dst, r.cert)
			binary.LittleEndian.PutUint32(dst[4:], r.scan)
			binary.LittleEndian.PutUint32(dst[8:], r.ip)
		},
		Decode: func(src []byte) sightRec {
			return sightRec{
				cert: binary.LittleEndian.Uint32(src),
				scan: binary.LittleEndian.Uint32(src[4:]),
				ip:   binary.LittleEndian.Uint32(src[8:]),
			}
		},
		Less:      func(a, b sightRec) bool { return a.cert < b.cert },
		MemBudget: cfg.MemBudget,
		Dir:       cfg.Dir,
		OnSpill:   cfg.OnSpill,
	})
	if err != nil {
		return nil, err
	}
	defer sorter.Close()

	for _, scan := range c.scans {
		for _, obs := range scan.Obs {
			if err := sorter.Add(sightRec{cert: uint32(obs.Cert), scan: uint32(scan.ID), ip: uint32(obs.IP)}); err != nil {
				return nil, err
			}
		}
	}
	if cfg.FanIn != nil {
		cfg.FanIn(sorter.FanIn())
	}

	idx := &Index{corpus: c, sightings: make([][]Sighting, len(c.certs))}
	// The merge streams cert-major; each certificate's sightings arrive
	// contiguously, so one growing slice per cert is filled exactly once.
	var cur int64 = -1
	var list []Sighting
	flush := func() {
		if cur >= 0 {
			idx.sightings[cur] = list
			list = nil
		}
	}
	err = sorter.Merge(func(r sightRec) error {
		if int(r.cert) >= len(c.certs) {
			return fmt.Errorf("scanstore: sighting references cert %d of %d", r.cert, len(c.certs))
		}
		if int64(r.cert) != cur {
			flush()
			cur = int64(r.cert)
		}
		list = append(list, Sighting{Scan: ScanID(r.scan), IP: netsim.IP(r.ip)})
		return nil
	})
	if err != nil {
		return nil, err
	}
	flush()
	idx.precompute(cfg.Workers)
	return idx, nil
}
