package scanstore

import (
	"crypto/ed25519"
	"fmt"
	"math/big"
	"reflect"
	"testing"

	"securepki/internal/netsim"
	"securepki/internal/truststore"
	"securepki/internal/x509lite"
)

// signer carries the issuing identity for makeCAPair.
type signer struct {
	name string
	priv ed25519.PrivateKey
}

// makeCAPair creates a CA-flagged certificate, self-signed when parent is
// nil, otherwise signed by the parent.
func makeCAPair(t testing.TB, seed byte, name string, parent *signer) (*x509lite.Certificate, ed25519.PrivateKey) {
	t.Helper()
	s := make([]byte, ed25519.SeedSize)
	s[0] = seed
	priv := ed25519.NewKeyFromSeed(s)
	pub := priv.Public().(ed25519.PublicKey)
	issuer, signKey := name, priv
	if parent != nil {
		issuer, signKey = parent.name, parent.priv
	}
	der, err := x509lite.CreateCertificate(&x509lite.Template{
		Version: 3, SerialNumber: big.NewInt(int64(seed)),
		Subject: x509lite.Name{CommonName: name}, Issuer: x509lite.Name{CommonName: issuer},
		NotBefore: day(0), NotAfter: day(4000),
		IsCA: true, IncludeBasicConstraints: true,
	}, pub, signKey)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := x509lite.Parse(der)
	if err != nil {
		t.Fatal(err)
	}
	return cert, priv
}

// buildSyntheticCorpus makes a corpus with enough structure to exercise the
// parallel paths: many certs, many scans, duplicate sightings, unseen certs.
func buildSyntheticCorpus(t testing.TB) *Corpus {
	t.Helper()
	c := NewCorpus()
	ids := make([]CertID, 60)
	for i := range ids {
		ids[i] = c.Intern(makeCert(t, fmt.Sprintf("par-%d.example", i), byte(100+i)))
	}
	c.Intern(makeCert(t, "never-seen.example", 99)) // no sightings
	for s := 0; s < 25; s++ {
		var obs []Observation
		for i, id := range ids {
			if (i+s)%3 == 0 {
				continue // not every cert in every scan
			}
			obs = append(obs, Observation{Cert: id, IP: netsim.MakeIP(10, byte(s), byte(i), 1)})
			if i%7 == 0 { // duplicate sighting, second IP
				obs = append(obs, Observation{Cert: id, IP: netsim.MakeIP(10, byte(s), byte(i), 2)})
			}
			if i%11 == 0 { // exact duplicate sighting
				obs = append(obs, Observation{Cert: id, IP: netsim.MakeIP(10, byte(s), byte(i), 1)})
			}
		}
		if _, err := c.AddScan(UMich, day(s*3), obs); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// The parallel index build must be byte-identical to the serial one at every
// worker count, including the precomputed accessors.
func TestBuildIndexSerialParallelEquivalence(t *testing.T) {
	c := buildSyntheticCorpus(t)
	serial := c.BuildIndexWorkers(1)
	for _, workers := range []int{2, 3, 8, 0} {
		par := c.BuildIndexWorkers(workers)
		for id := 0; id < c.NumCerts(); id++ {
			cid := CertID(id)
			if !reflect.DeepEqual(serial.Sightings(cid), par.Sightings(cid)) {
				t.Fatalf("workers=%d cert %d: sightings differ", workers, id)
			}
			if !reflect.DeepEqual(serial.ScansSeen(cid), par.ScansSeen(cid)) {
				t.Fatalf("workers=%d cert %d: ScansSeen differ", workers, id)
			}
			for _, scan := range serial.ScansSeen(cid) {
				if !reflect.DeepEqual(serial.IPsInScan(cid, scan), par.IPsInScan(cid, scan)) {
					t.Fatalf("workers=%d cert %d scan %d: IPsInScan differ", workers, id, scan)
				}
			}
			if serial.AvgIPsPerScan(cid) != par.AvgIPsPerScan(cid) {
				t.Fatalf("workers=%d cert %d: AvgIPsPerScan differ", workers, id)
			}
			if serial.MaxIPsInAnyScan(cid) != par.MaxIPsInAnyScan(cid) {
				t.Fatalf("workers=%d cert %d: MaxIPsInAnyScan differ", workers, id)
			}
		}
	}
}

// Parallel validation must agree with serial validation on both the counts
// map and every per-certificate status.
func TestValidateSerialParallelEquivalence(t *testing.T) {
	build := func() (*Corpus, *truststore.Store) {
		c := buildSyntheticCorpus(t)
		return c, truststore.NewStore()
	}
	cSerial, sSerial := build()
	wantCounts := cSerial.ValidateWorkers(sSerial, 1)
	wantStatus := make([]truststore.Status, cSerial.NumCerts())
	for i := range wantStatus {
		wantStatus[i] = cSerial.Cert(CertID(i)).Status
	}
	for _, workers := range []int{2, 5, 0} {
		cPar, sPar := build()
		gotCounts := cPar.ValidateWorkers(sPar, workers)
		if !reflect.DeepEqual(wantCounts, gotCounts) {
			t.Fatalf("workers=%d: counts %v, want %v", workers, gotCounts, wantCounts)
		}
		for i := range wantStatus {
			if got := cPar.Cert(CertID(i)).Status; got != wantStatus[i] {
				t.Fatalf("workers=%d cert %d: status %v, want %v", workers, i, got, wantStatus[i])
			}
		}
	}
}

// Regression: Validate must be re-entrant. A second call re-classifies
// identically and must not grow the store's intermediate pool (every CA cert
// is pooled on each call; AddIntermediate dedupes by fingerprint).
func TestValidateReentrant(t *testing.T) {
	// Root → intermediate → leaf, with the intermediate interned so Validate
	// pools it (the §4.2 transvalid path), plus self-signed leaves.
	root, rootPriv := makeCAPair(t, 0xd0, "Reentrant Root", nil)
	inter, _ := makeCAPair(t, 0xd1, "Reentrant Inter", &signer{name: "Reentrant Root", priv: rootPriv})

	c := NewCorpus()
	c.Intern(inter)
	for i := 0; i < 5; i++ {
		c.Intern(makeCert(t, fmt.Sprintf("reentrant-%d", i), byte(210+i)))
	}

	store := truststore.NewStore()
	store.AddRoot(root)
	first := c.Validate(store)
	inters := store.NumIntermediates()
	if inters != 1 {
		t.Fatalf("expected the CA cert pooled once, got %d intermediates", inters)
	}
	statuses := make([]truststore.Status, c.NumCerts())
	for i := range statuses {
		statuses[i] = c.Cert(CertID(i)).Status
	}
	for round := 0; round < 2; round++ {
		again := c.Validate(store)
		if !reflect.DeepEqual(first, again) {
			t.Errorf("re-validation changed counts: %v then %v", first, again)
		}
		if got := store.NumIntermediates(); got != inters {
			t.Errorf("re-validation grew the intermediate pool: %d -> %d", inters, got)
		}
		for i := range statuses {
			if got := c.Cert(CertID(i)).Status; got != statuses[i] {
				t.Errorf("re-validation changed cert %d status: %v -> %v", i, statuses[i], got)
			}
		}
	}
}
