package scanstore

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"securepki/internal/x509lite"
)

// wire types for gob; certificates travel as raw DER and are re-parsed on
// load so the on-disk format stays independent of in-memory structure.
type wireCorpus struct {
	Version int
	DERs    [][]byte
	Scans   []wireScan
}

type wireScan struct {
	Operator int
	Time     time.Time
	Obs      []Observation
}

const wireVersion = 1

// Write serialises the corpus as gzip-compressed gob. Validation statuses
// are not persisted; run Validate after loading.
func (c *Corpus) Write(w io.Writer) error {
	zw := gzip.NewWriter(w)
	wc := wireCorpus{Version: wireVersion}
	wc.DERs = make([][]byte, len(c.certs))
	for i, rec := range c.certs {
		wc.DERs[i] = rec.Cert.Raw
	}
	wc.Scans = make([]wireScan, len(c.scans))
	for i, s := range c.scans {
		wc.Scans[i] = wireScan{Operator: int(s.Operator), Time: s.Time, Obs: s.Obs}
	}
	if err := gob.NewEncoder(zw).Encode(&wc); err != nil {
		zw.Close()
		return fmt.Errorf("scanstore: encode: %w", err)
	}
	return zw.Close()
}

// maxWireDER bounds a single certificate record read from a v1 stream; a
// length beyond it is treated as corruption, not a request for memory.
const maxWireDER = 1 << 24

// ReadFrom loads a corpus written by Write. Input is treated as hostile:
// truncated gzip streams, unknown versions and absurd certificate lengths
// yield explicit errors. (New code should prefer the v2 sharded format in
// internal/snapshot, whose Read also accepts this format.)
func ReadFrom(r io.Reader) (*Corpus, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("scanstore: gzip: %w", err)
	}
	defer zr.Close()
	var wc wireCorpus
	if err := gob.NewDecoder(zr).Decode(&wc); err != nil {
		return nil, fmt.Errorf("scanstore: decode: %w", err)
	}
	// Judge the version before trusting any field of the decoded structure.
	if wc.Version != wireVersion {
		return nil, fmt.Errorf("scanstore: unsupported corpus version %d", wc.Version)
	}
	c := NewCorpus()
	for i, der := range wc.DERs {
		if len(der) == 0 || len(der) > maxWireDER {
			return nil, fmt.Errorf("scanstore: cert %d length %d outside (0, %d]", i, len(der), maxWireDER)
		}
		cert, err := x509lite.Parse(der)
		if err != nil {
			return nil, fmt.Errorf("scanstore: cert %d: %w", i, err)
		}
		if got := c.Intern(cert); int(got) != i {
			return nil, fmt.Errorf("scanstore: duplicate cert %d in stream", i)
		}
	}
	for _, ws := range wc.Scans {
		for _, obs := range ws.Obs {
			if int(obs.Cert) >= len(c.certs) || obs.Cert < 0 {
				return nil, fmt.Errorf("scanstore: observation references cert %d of %d", obs.Cert, len(c.certs))
			}
		}
		if _, err := c.AddScan(Operator(ws.Operator), ws.Time, ws.Obs); err != nil {
			return nil, err
		}
	}
	return c, nil
}
