package scanstore

import (
	"reflect"
	"testing"
)

// indexEqual fails unless every accessor of the two indexes agrees on every
// certificate.
func indexEqual(t *testing.T, c *Corpus, want, got *Index, label string) {
	t.Helper()
	for id := 0; id < c.NumCerts(); id++ {
		cid := CertID(id)
		if !reflect.DeepEqual(want.Sightings(cid), got.Sightings(cid)) {
			t.Fatalf("%s cert %d: sightings differ\nwant %v\ngot  %v", label, id, want.Sightings(cid), got.Sightings(cid))
		}
		if !reflect.DeepEqual(want.ScansSeen(cid), got.ScansSeen(cid)) {
			t.Fatalf("%s cert %d: ScansSeen differ", label, id)
		}
		for _, scan := range want.ScansSeen(cid) {
			if !reflect.DeepEqual(want.IPsInScan(cid, scan), got.IPsInScan(cid, scan)) {
				t.Fatalf("%s cert %d scan %d: IPsInScan differ", label, id, scan)
			}
		}
		if want.AvgIPsPerScan(cid) != got.AvgIPsPerScan(cid) {
			t.Fatalf("%s cert %d: AvgIPsPerScan differ", label, id)
		}
		if want.MaxIPsInAnyScan(cid) != got.MaxIPsInAnyScan(cid) {
			t.Fatalf("%s cert %d: MaxIPsInAnyScan differ", label, id)
		}
	}
}

// TestBuildIndexExtEquivalence demands the external-merge index agree with
// the in-memory build on every accessor, with and without spilled runs.
func TestBuildIndexExtEquivalence(t *testing.T) {
	c := buildSyntheticCorpus(t)
	want := c.BuildIndexWorkers(1)
	for _, budget := range []int64{0, 1 << 30, 256, 12} {
		spills := 0
		got, err := c.BuildIndexExt(ExtIndexConfig{
			MemBudget: budget,
			Dir:       t.TempDir(),
			OnSpill:   func(records int, bytes int64) { spills++ },
		})
		if err != nil {
			t.Fatalf("budget=%d: %v", budget, err)
		}
		if budget > 0 && budget <= 256 && spills == 0 {
			t.Fatalf("budget=%d: expected spilled runs, got none", budget)
		}
		indexEqual(t, c, want, got, "ext")
	}
}

// TestBuildIndexExtEmpty pins the empty corpus: no certs, no scans.
func TestBuildIndexExtEmpty(t *testing.T) {
	c := NewCorpus()
	idx, err := c.BuildIndexExt(ExtIndexConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if idx == nil {
		t.Fatal("nil index for empty corpus")
	}
}

// TestBuildIndexExtFanIn checks the fan-in observer fires with a plausible
// value once runs have spilled.
func TestBuildIndexExtFanIn(t *testing.T) {
	c := buildSyntheticCorpus(t)
	fanIn := -1
	if _, err := c.BuildIndexExt(ExtIndexConfig{
		MemBudget: 128,
		Dir:       t.TempDir(),
		FanIn:     func(n int) { fanIn = n },
	}); err != nil {
		t.Fatal(err)
	}
	if fanIn < 2 {
		t.Fatalf("fan-in %d with a 128-byte budget; expected several runs", fanIn)
	}
}
