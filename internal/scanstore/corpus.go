// Package scanstore holds the measurement corpus: every distinct certificate
// observed (deduplicated by SHA-256 fingerprint, as the paper counts "unique
// certificates"), the series of scans from both operators, and the
// per-scan (certificate, IP) observations. It also provides the derived
// indexes the analyses need — per-certificate observation lists, lifetimes,
// and per-scan IP sets — plus a gzip/gob serialisation so generated corpora
// can be written by cmd/scangen and consumed by the analysis binaries.
package scanstore

import (
	"fmt"
	"sort"
	"time"

	"securepki/internal/netsim"
	"securepki/internal/truststore"
	"securepki/internal/x509lite"
)

// CertID indexes the deduplicated certificate table.
type CertID int32

// ScanID indexes the scan series in chronological order of insertion.
type ScanID int32

// Operator identifies which scan campaign produced a snapshot.
type Operator int

// The two scan operators of §4.1.
const (
	UMich Operator = iota
	Rapid7
)

// String returns the operator label used in reports.
func (o Operator) String() string {
	switch o {
	case UMich:
		return "Univ. Michigan"
	case Rapid7:
		return "Rapid7"
	default:
		return "unknown"
	}
}

// CertRecord is one deduplicated certificate plus its validation outcome.
type CertRecord struct {
	ID     CertID
	Cert   *x509lite.Certificate
	Status truststore.Status
}

// Observation is one (certificate, IP) sighting within a scan.
type Observation struct {
	Cert CertID
	IP   netsim.IP
}

// Scan is one full-IPv4 snapshot.
type Scan struct {
	ID       ScanID
	Operator Operator
	Time     time.Time
	Obs      []Observation
}

// Day returns the scan's date truncated to UTC midnight.
func (s *Scan) Day() time.Time {
	return time.Date(s.Time.Year(), s.Time.Month(), s.Time.Day(), 0, 0, 0, 0, time.UTC)
}

// Corpus accumulates scans and certificates. Not safe for concurrent
// mutation; read access after building is safe.
type Corpus struct {
	certs []*CertRecord
	byFP  map[x509lite.Fingerprint]CertID
	scans []*Scan
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{byFP: make(map[x509lite.Fingerprint]CertID)}
}

// Intern deduplicates a parsed certificate, returning its stable ID.
func (c *Corpus) Intern(cert *x509lite.Certificate) CertID {
	fp := cert.Fingerprint()
	if id, ok := c.byFP[fp]; ok {
		return id
	}
	id := CertID(len(c.certs))
	c.certs = append(c.certs, &CertRecord{ID: id, Cert: cert})
	c.byFP[fp] = id
	return id
}

// Lookup returns the ID for a fingerprint if the certificate is interned.
func (c *Corpus) Lookup(fp x509lite.Fingerprint) (CertID, bool) {
	id, ok := c.byFP[fp]
	return id, ok
}

// AddScan appends a scan snapshot and returns its ID. Scans must be added in
// chronological order; out-of-order insertion is an error.
func (c *Corpus) AddScan(op Operator, at time.Time, obs []Observation) (ScanID, error) {
	if len(c.scans) > 0 && at.Before(c.scans[len(c.scans)-1].Time) {
		return 0, fmt.Errorf("scanstore: scan at %v inserted after %v", at, c.scans[len(c.scans)-1].Time)
	}
	id := ScanID(len(c.scans))
	c.scans = append(c.scans, &Scan{ID: id, Operator: op, Time: at, Obs: obs})
	return id, nil
}

// NumCerts returns the number of distinct certificates.
func (c *Corpus) NumCerts() int { return len(c.certs) }

// NumScans returns the number of scans.
func (c *Corpus) NumScans() int { return len(c.scans) }

// Cert returns the record for an ID.
func (c *Corpus) Cert(id CertID) *CertRecord { return c.certs[id] }

// Certs returns the certificate table in ID order.
func (c *Corpus) Certs() []*CertRecord { return c.certs }

// Scan returns one scan by ID.
func (c *Corpus) Scan(id ScanID) *Scan { return c.scans[id] }

// Scans returns all scans in chronological order.
func (c *Corpus) Scans() []*Scan { return c.scans }

// Validate classifies every interned certificate against the store,
// pooling every CA-flagged certificate as an intermediate first so that
// transvalid chains complete (§4.2). It returns counts per status.
func (c *Corpus) Validate(store *truststore.Store) map[truststore.Status]int {
	for _, rec := range c.certs {
		if rec.Cert.IsCA {
			store.AddIntermediate(rec.Cert)
		}
	}
	counts := make(map[truststore.Status]int)
	for _, rec := range c.certs {
		rec.Status = store.Verify(rec.Cert).Status
		counts[rec.Status]++
	}
	return counts
}

// Sighting is one appearance of a certificate: which scan and which IP.
type Sighting struct {
	Scan ScanID
	IP   netsim.IP
}

// Index is the per-certificate view of the corpus the linking and lifetime
// analyses consume. Build it once with BuildIndex after all scans are added.
type Index struct {
	corpus    *Corpus
	sightings [][]Sighting // by CertID, ordered by scan
}

// BuildIndex inverts the scan → observation mapping into per-certificate
// sighting lists.
func (c *Corpus) BuildIndex() *Index {
	idx := &Index{corpus: c, sightings: make([][]Sighting, len(c.certs))}
	for _, scan := range c.scans {
		for _, obs := range scan.Obs {
			idx.sightings[obs.Cert] = append(idx.sightings[obs.Cert], Sighting{Scan: scan.ID, IP: obs.IP})
		}
	}
	return idx
}

// Sightings returns every appearance of the certificate, in scan order.
func (i *Index) Sightings(id CertID) []Sighting { return i.sightings[id] }

// ScansSeen returns the distinct scan IDs in which the certificate appeared.
func (i *Index) ScansSeen(id CertID) []ScanID {
	var out []ScanID
	var last ScanID = -1
	for _, s := range i.sightings[id] {
		if s.Scan != last {
			out = append(out, s.Scan)
			last = s.Scan
		}
	}
	return out
}

// IPsInScan returns the distinct IPs that advertised the certificate in one
// scan — the quantity the §6.2 scan-duplicate rule thresholds.
func (i *Index) IPsInScan(id CertID, scan ScanID) []netsim.IP {
	var out []netsim.IP
	for _, s := range i.sightings[id] {
		if s.Scan != scan {
			continue
		}
		dup := false
		for _, ip := range out {
			if ip == s.IP {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, s.IP)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// FirstSeen returns the time of the first scan that observed the certificate
// and false if it was never observed.
func (i *Index) FirstSeen(id CertID) (time.Time, bool) {
	s := i.sightings[id]
	if len(s) == 0 {
		return time.Time{}, false
	}
	return i.corpus.Scan(s[0].Scan).Time, true
}

// LastSeen returns the time of the last scan that observed the certificate.
func (i *Index) LastSeen(id CertID) (time.Time, bool) {
	s := i.sightings[id]
	if len(s) == 0 {
		return time.Time{}, false
	}
	return i.corpus.Scan(s[len(s)-1].Scan).Time, true
}

// LifetimeDays computes the paper's (inclusive) lifetime: one day for a
// single sighting, last−first+1 days otherwise (§5.1's "two scans a week
// apart → 8 days"). The second return is false if the cert was never seen.
func (i *Index) LifetimeDays(id CertID) (int, bool) {
	first, ok := i.FirstSeen(id)
	if !ok {
		return 0, false
	}
	last, _ := i.LastSeen(id)
	days := int(last.Sub(first).Hours()/24) + 1
	return days, true
}

// AvgIPsPerScan returns the certificate's mean count of distinct advertising
// IPs over the scans in which it appeared (Figure 7's x-axis).
func (i *Index) AvgIPsPerScan(id CertID) float64 {
	s := i.sightings[id]
	if len(s) == 0 {
		return 0
	}
	perScan := make(map[ScanID]map[netsim.IP]bool)
	for _, sg := range s {
		m, ok := perScan[sg.Scan]
		if !ok {
			m = make(map[netsim.IP]bool)
			perScan[sg.Scan] = m
		}
		m[sg.IP] = true
	}
	total := 0
	for _, m := range perScan {
		total += len(m)
	}
	return float64(total) / float64(len(perScan))
}

// MaxIPsInAnyScan returns the maximum distinct advertising IPs in any single
// scan, the input to the §6.2 uniqueness rule.
func (i *Index) MaxIPsInAnyScan(id CertID) int {
	perScan := make(map[ScanID]map[netsim.IP]bool)
	for _, sg := range i.sightings[id] {
		m, ok := perScan[sg.Scan]
		if !ok {
			m = make(map[netsim.IP]bool)
			perScan[sg.Scan] = m
		}
		m[sg.IP] = true
	}
	max := 0
	for _, m := range perScan {
		if len(m) > max {
			max = len(m)
		}
	}
	return max
}
