// Package scanstore holds the measurement corpus: every distinct certificate
// observed (deduplicated by SHA-256 fingerprint, as the paper counts "unique
// certificates"), the series of scans from both operators, and the
// per-scan (certificate, IP) observations. It also provides the derived
// indexes the analyses need — per-certificate observation lists, lifetimes,
// and per-scan IP sets — plus a gzip/gob serialisation so generated corpora
// can be written by cmd/scangen and consumed by the analysis binaries.
package scanstore

import (
	"fmt"
	"sort"
	"time"

	"securepki/internal/netsim"
	"securepki/internal/parallel"
	"securepki/internal/truststore"
	"securepki/internal/x509lite"
)

// CertID indexes the deduplicated certificate table.
type CertID int32

// ScanID indexes the scan series in chronological order of insertion.
type ScanID int32

// Operator identifies which scan campaign produced a snapshot.
type Operator int

// The two scan operators of §4.1.
const (
	UMich Operator = iota
	Rapid7
)

// String returns the operator label used in reports.
func (o Operator) String() string {
	switch o {
	case UMich:
		return "Univ. Michigan"
	case Rapid7:
		return "Rapid7"
	default:
		return "unknown"
	}
}

// CertRecord is one deduplicated certificate plus its validation outcome.
type CertRecord struct {
	ID     CertID
	Cert   *x509lite.Certificate
	Status truststore.Status
}

// Observation is one (certificate, IP) sighting within a scan.
type Observation struct {
	Cert CertID
	IP   netsim.IP
}

// Scan is one full-IPv4 snapshot.
type Scan struct {
	ID       ScanID
	Operator Operator
	Time     time.Time
	Obs      []Observation
}

// Day returns the scan's date truncated to UTC midnight.
func (s *Scan) Day() time.Time {
	return time.Date(s.Time.Year(), s.Time.Month(), s.Time.Day(), 0, 0, 0, 0, time.UTC)
}

// Corpus accumulates scans and certificates. Not safe for concurrent
// mutation; read access after building is safe.
type Corpus struct {
	certs []*CertRecord
	byFP  map[x509lite.Fingerprint]CertID
	scans []*Scan
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{byFP: make(map[x509lite.Fingerprint]CertID)}
}

// Intern deduplicates a parsed certificate, returning its stable ID.
func (c *Corpus) Intern(cert *x509lite.Certificate) CertID {
	fp := cert.Fingerprint()
	if id, ok := c.byFP[fp]; ok {
		return id
	}
	id := CertID(len(c.certs))
	c.certs = append(c.certs, &CertRecord{ID: id, Cert: cert})
	c.byFP[fp] = id
	return id
}

// Lookup returns the ID for a fingerprint if the certificate is interned.
func (c *Corpus) Lookup(fp x509lite.Fingerprint) (CertID, bool) {
	id, ok := c.byFP[fp]
	return id, ok
}

// AddScan appends a scan snapshot and returns its ID. Scans must be added in
// chronological order; out-of-order insertion is an error.
func (c *Corpus) AddScan(op Operator, at time.Time, obs []Observation) (ScanID, error) {
	if len(c.scans) > 0 && at.Before(c.scans[len(c.scans)-1].Time) {
		return 0, fmt.Errorf("scanstore: scan at %v inserted after %v", at, c.scans[len(c.scans)-1].Time)
	}
	id := ScanID(len(c.scans))
	c.scans = append(c.scans, &Scan{ID: id, Operator: op, Time: at, Obs: obs})
	return id, nil
}

// NumCerts returns the number of distinct certificates.
func (c *Corpus) NumCerts() int { return len(c.certs) }

// NumScans returns the number of scans.
func (c *Corpus) NumScans() int { return len(c.scans) }

// NumObservations returns the total (certificate, IP) sightings across all
// scans — the quantity the sighting index is built over.
func (c *Corpus) NumObservations() int {
	total := 0
	for _, s := range c.scans {
		total += len(s.Obs)
	}
	return total
}

// Cert returns the record for an ID.
func (c *Corpus) Cert(id CertID) *CertRecord { return c.certs[id] }

// Certs returns the certificate table in ID order.
func (c *Corpus) Certs() []*CertRecord { return c.certs }

// Scan returns one scan by ID.
func (c *Corpus) Scan(id ScanID) *Scan { return c.scans[id] }

// Scans returns all scans in chronological order.
func (c *Corpus) Scans() []*Scan { return c.scans }

// Validate classifies every interned certificate against the store,
// pooling every CA-flagged certificate as an intermediate first so that
// transvalid chains complete (§4.2). It returns counts per status.
// Validation fans out across GOMAXPROCS workers; use ValidateWorkers to pin
// the worker count. Calling it again re-classifies without growing the store
// (AddIntermediate is idempotent).
func (c *Corpus) Validate(store *truststore.Store) map[truststore.Status]int {
	return c.ValidateWorkers(store, 0)
}

// ValidateWorkers is Validate with an explicit worker count (<= 0 means
// GOMAXPROCS). Results are identical at any worker count: each worker owns a
// contiguous slice of the certificate table, per-worker status counts are
// merged after the barrier, and the store's chain cache fills with values
// that do not depend on scheduling.
func (c *Corpus) ValidateWorkers(store *truststore.Store, workers int) map[truststore.Status]int {
	// Pool serially: the store is not safe for concurrent mutation, and the
	// pool must be complete before any chain is memoized.
	for _, rec := range c.certs {
		if rec.Cert.IsCA {
			store.AddIntermediate(rec.Cert)
		}
	}
	n := len(c.certs)
	counts := parallel.NewCounter[truststore.Status](parallel.NumShards(workers, n))
	parallel.Do(workers, n, func(shard, lo, hi int) {
		for i := lo; i < hi; i++ {
			rec := c.certs[i]
			rec.Status = store.Verify(rec.Cert).Status
			counts.Add(shard, rec.Status, 1)
		}
	})
	return counts.Total()
}

// Sighting is one appearance of a certificate: which scan and which IP.
type Sighting struct {
	Scan ScanID
	IP   netsim.IP
}

// scanIPs is one certificate's distinct advertising IPs within one scan,
// sorted ascending — precomputed so the linking loops stop re-deduplicating
// and re-sorting on every call.
type scanIPs struct {
	Scan ScanID
	IPs  []netsim.IP
}

// Index is the per-certificate view of the corpus the linking and lifetime
// analyses consume. Build it once with BuildIndex after all scans are added.
// All accessors return precomputed slices; callers must not modify them.
type Index struct {
	corpus    *Corpus
	sightings [][]Sighting // by CertID, ordered by scan
	scansSeen [][]ScanID   // by CertID: distinct scans, ascending
	perScan   [][]scanIPs  // by CertID: distinct sorted IPs per scan, by scan
}

// BuildIndex inverts the scan → observation mapping into per-certificate
// sighting lists and precomputes the per-scan views (distinct scans, distinct
// IPs per scan) that the §6 loops hammer. The inversion fans out across
// GOMAXPROCS workers; use BuildIndexWorkers to pin the count.
func (c *Corpus) BuildIndex() *Index {
	return c.BuildIndexWorkers(0)
}

// BuildIndexWorkers is BuildIndex with an explicit worker count (<= 0 means
// GOMAXPROCS). Each worker inverts a contiguous chunk of the scan series
// into its own sighting shard; shards are then concatenated in chunk order,
// which is scan order, so the result is identical to the serial build.
func (c *Corpus) BuildIndexWorkers(workers int) *Index {
	idx := &Index{corpus: c, sightings: make([][]Sighting, len(c.certs))}
	nScans := len(c.scans)
	shards := parallel.NumShards(workers, nScans)
	if shards <= 1 {
		for _, scan := range c.scans {
			for _, obs := range scan.Obs {
				idx.sightings[obs.Cert] = append(idx.sightings[obs.Cert], Sighting{Scan: scan.ID, IP: obs.IP})
			}
		}
	} else {
		partial := make([][][]Sighting, shards)
		parallel.Do(workers, nScans, func(shard, lo, hi int) {
			sh := make([][]Sighting, len(c.certs))
			for _, scan := range c.scans[lo:hi] {
				for _, obs := range scan.Obs {
					sh[obs.Cert] = append(sh[obs.Cert], Sighting{Scan: scan.ID, IP: obs.IP})
				}
			}
			partial[shard] = sh
		})
		// Merge per certificate, shards in scan-chunk order; certificates are
		// independent, so the merge itself fans out.
		parallel.ForEach(workers, len(c.certs), func(i int) {
			total := 0
			for _, sh := range partial {
				total += len(sh[i])
			}
			if total == 0 {
				return
			}
			merged := make([]Sighting, 0, total)
			for _, sh := range partial {
				merged = append(merged, sh[i]...)
			}
			idx.sightings[i] = merged
		})
	}
	idx.precompute(workers)
	return idx
}

// precompute derives the per-certificate scan lists and per-scan IP sets from
// the sighting lists. Sightings arrive grouped by scan (scans are inverted in
// order), so each certificate's list splits into contiguous runs.
func (i *Index) precompute(workers int) {
	n := len(i.sightings)
	i.scansSeen = make([][]ScanID, n)
	i.perScan = make([][]scanIPs, n)
	parallel.ForEach(workers, n, func(id int) {
		s := i.sightings[id]
		if len(s) == 0 {
			return
		}
		var scans []ScanID
		var runs []scanIPs
		for lo := 0; lo < len(s); {
			hi := lo
			for hi < len(s) && s[hi].Scan == s[lo].Scan {
				hi++
			}
			ips := make([]netsim.IP, 0, hi-lo)
			for _, sg := range s[lo:hi] {
				dup := false
				for _, ip := range ips {
					if ip == sg.IP {
						dup = true
						break
					}
				}
				if !dup {
					ips = append(ips, sg.IP)
				}
			}
			sort.Slice(ips, func(a, b int) bool { return ips[a] < ips[b] })
			scans = append(scans, s[lo].Scan)
			runs = append(runs, scanIPs{Scan: s[lo].Scan, IPs: ips})
			lo = hi
		}
		i.scansSeen[id] = scans
		i.perScan[id] = runs
	})
}

// Sightings returns every appearance of the certificate, in scan order.
func (i *Index) Sightings(id CertID) []Sighting { return i.sightings[id] }

// ScansSeen returns the distinct scan IDs in which the certificate appeared,
// ascending. The slice is precomputed; do not modify it.
func (i *Index) ScansSeen(id CertID) []ScanID { return i.scansSeen[id] }

// IPsInScan returns the distinct IPs that advertised the certificate in one
// scan — the quantity the §6.2 scan-duplicate rule thresholds — sorted
// ascending. The slice is precomputed; do not modify it.
func (i *Index) IPsInScan(id CertID, scan ScanID) []netsim.IP {
	for _, run := range i.perScan[id] {
		if run.Scan == scan {
			return run.IPs
		}
		if run.Scan > scan {
			break // runs are ascending
		}
	}
	return nil
}

// FirstSeen returns the time of the first scan that observed the certificate
// and false if it was never observed.
func (i *Index) FirstSeen(id CertID) (time.Time, bool) {
	s := i.sightings[id]
	if len(s) == 0 {
		return time.Time{}, false
	}
	return i.corpus.Scan(s[0].Scan).Time, true
}

// LastSeen returns the time of the last scan that observed the certificate.
func (i *Index) LastSeen(id CertID) (time.Time, bool) {
	s := i.sightings[id]
	if len(s) == 0 {
		return time.Time{}, false
	}
	return i.corpus.Scan(s[len(s)-1].Scan).Time, true
}

// LifetimeDays computes the paper's (inclusive) lifetime: one day for a
// single sighting, last−first+1 days otherwise (§5.1's "two scans a week
// apart → 8 days"). The second return is false if the cert was never seen.
func (i *Index) LifetimeDays(id CertID) (int, bool) {
	first, ok := i.FirstSeen(id)
	if !ok {
		return 0, false
	}
	last, _ := i.LastSeen(id)
	days := int(last.Sub(first).Hours()/24) + 1
	return days, true
}

// AvgIPsPerScan returns the certificate's mean count of distinct advertising
// IPs over the scans in which it appeared (Figure 7's x-axis).
func (i *Index) AvgIPsPerScan(id CertID) float64 {
	runs := i.perScan[id]
	if len(runs) == 0 {
		return 0
	}
	total := 0
	for _, run := range runs {
		total += len(run.IPs)
	}
	return float64(total) / float64(len(runs))
}

// MaxIPsInAnyScan returns the maximum distinct advertising IPs in any single
// scan, the input to the §6.2 uniqueness rule.
func (i *Index) MaxIPsInAnyScan(id CertID) int {
	max := 0
	for _, run := range i.perScan[id] {
		if len(run.IPs) > max {
			max = len(run.IPs)
		}
	}
	return max
}
