package tracking

import (
	"sync"
	"testing"
	"time"

	"securepki/internal/analysis"
	"securepki/internal/devicesim"
	"securepki/internal/linking"
	"securepki/internal/scanner"
	"securepki/internal/truststore"
)

var (
	fixOnce sync.Once
	fix     struct {
		tracker *Tracker
		world   *devicesim.World
		err     error
	}
)

func tracker(t *testing.T) (*Tracker, *devicesim.World) {
	t.Helper()
	fixOnce.Do(func() {
		wcfg := devicesim.DefaultConfig()
		wcfg.NumDevices = 2500
		wcfg.NumSites = 900
		world, err := devicesim.BuildWorld(wcfg)
		if err != nil {
			fix.err = err
			return
		}
		scfg := scanner.DefaultConfig()
		scfg.UMichScans = 22
		scfg.Rapid7Scans = 12
		camp, err := scanner.New(world, scfg)
		if err != nil {
			fix.err = err
			return
		}
		corpus, _, err := camp.Run()
		if err != nil {
			fix.err = err
			return
		}
		store := truststore.NewStore()
		for _, r := range world.Roots() {
			store.AddRoot(r)
		}
		corpus.Validate(store)
		ds := analysis.NewDataset(corpus, world.Internet)
		linker := linking.NewLinker(ds, linking.DefaultConfig())
		res := linker.Link()
		fix.tracker = NewTracker(ds, res, linker)
		fix.world = world
	})
	if fix.err != nil {
		t.Fatal(fix.err)
	}
	return fix.tracker, fix.world
}

const year = 365 * 24 * time.Hour

func TestEntitiesCoverAllInvalidCerts(t *testing.T) {
	tr, _ := tracker(t)
	if len(tr.Entities()) == 0 {
		t.Fatal("no entities")
	}
	linked, single := 0, 0
	for _, e := range tr.Entities() {
		if len(e.Certs) == 0 || len(e.Sightings) == 0 {
			t.Fatal("entity without certs or sightings")
		}
		if e.Linked {
			linked++
			if len(e.Certs) < 2 {
				t.Fatal("linked entity with a single cert")
			}
		} else {
			single++
		}
		for i := 1; i < len(e.Sightings); i++ {
			if e.Sightings[i].Scan < e.Sightings[i-1].Scan {
				t.Fatal("entity sightings out of order")
			}
		}
	}
	if linked == 0 || single == 0 {
		t.Errorf("degenerate entity mix: %d linked, %d single", linked, single)
	}
}

func TestTrackableGain(t *testing.T) {
	tr, _ := tracker(t)
	rep := tr.Trackable(year)
	if rep.Baseline == 0 {
		t.Fatal("no baseline-trackable devices")
	}
	if rep.WithLinking <= rep.Baseline {
		t.Errorf("linking added no trackable devices: %d -> %d", rep.Baseline, rep.WithLinking)
	}
	// Paper: +17.2%. The scaled population is reissue-heavier than the real
	// Internet, so accept a generous band (direction and significance are
	// the reproduction criteria; EXPERIMENTS.md records the exact value).
	if g := rep.Gain(); g < 0.02 || g > 4.0 {
		t.Errorf("trackable gain = %.3f", g)
	}
}

func TestMovementReport(t *testing.T) {
	tr, _ := tracker(t)
	rep := tr.Movement(year, 10)
	if rep.TrackedDevices == 0 {
		t.Fatal("no tracked devices")
	}
	if rep.DevicesChanging == 0 {
		t.Fatal("no devices changed AS")
	}
	if rep.TotalTransitions < rep.DevicesChanging {
		t.Errorf("transitions (%d) < changing devices (%d)", rep.TotalTransitions, rep.DevicesChanging)
	}
	// Paper: 69.7% of movers change exactly once — i.e. single moves
	// dominate. (The paper's multi-movers are mobile tablets; our scaled
	// corpus tracks fewer of those, pushing the fraction higher.)
	if rep.ChangedOnceFrac < 0.3 {
		t.Errorf("changed-once fraction = %.3f", rep.ChangedOnceFrac)
	}
	if rep.CountryMoves == 0 {
		t.Error("no cross-country movements observed")
	}
	if rep.CountryMoves > rep.DevicesChanging {
		t.Error("country moves exceed AS-changing devices")
	}
}

func TestBulkTransfersDetected(t *testing.T) {
	tr, w := tracker(t)
	// The world schedules Verizon→MCI and AT&T→MCI block transfers; with a
	// low threshold the detector must surface movements into AS701.
	rep := tr.Movement(0, 5)
	if len(w.Transfers) == 0 {
		t.Skip("world scheduled no transfers")
	}
	found := false
	for _, b := range rep.BulkTransfers {
		if b.ToASN == 701 {
			found = true
			if b.Devices < 5 {
				t.Errorf("bulk transfer below threshold: %+v", b)
			}
		}
	}
	if !found {
		t.Errorf("no bulk transfer into AS701 detected; got %v", rep.BulkTransfers)
	}
}

func TestReassignmentReport(t *testing.T) {
	tr, _ := tracker(t)
	rep := tr.Reassignment(year, 10)
	if len(rep.PerAS) < 5 {
		t.Fatalf("only %d ASes with >=10 tracked devices", len(rep.PerAS))
	}
	byASN := map[int]ASReassignment{}
	for _, r := range rep.PerAS {
		byASN[r.ASN] = r
		if r.StaticFrac < 0 || r.StaticFrac > 1 {
			t.Fatalf("static fraction out of range: %+v", r)
		}
	}
	// Deutsche Telekom renumbers daily: its tracked devices must be far
	// less static than Comcast's (paper: DT 76.3% change every scan;
	// Comcast 90% static).
	dt, okDT := byASN[3320]
	comcast, okC := byASN[7922]
	if okDT && okC {
		if dt.StaticFrac >= comcast.StaticFrac {
			t.Errorf("DT static %.3f >= Comcast static %.3f", dt.StaticFrac, comcast.StaticFrac)
		}
		if dt.PerScanChurnFrac < 0.5 {
			t.Errorf("DT per-scan churn = %.3f, want high", dt.PerScanChurnFrac)
		}
	}
	// Figure 11's shape: a majority of ASes are mostly static.
	if rep.MostlyStaticASes*2 < len(rep.PerAS) {
		t.Errorf("mostly-static ASes = %d of %d, want majority", rep.MostlyStaticASes, len(rep.PerAS))
	}
	if rep.HighlyDynamicASes == 0 {
		t.Error("no highly dynamic ASes found (DT & friends expected)")
	}
	if rep.StaticFracCDF.Len() != len(rep.PerAS) {
		t.Error("CDF size mismatch")
	}
}

func TestTrackableMinSpanMonotone(t *testing.T) {
	tr, _ := tracker(t)
	short := tr.Trackable(30 * 24 * time.Hour)
	long := tr.Trackable(year)
	if long.WithLinking > short.WithLinking {
		t.Errorf("raising the span threshold increased trackables: %d -> %d",
			short.WithLinking, long.WithLinking)
	}
}
