// Package tracking implements the paper's §7 applications: once invalid
// certificates are linked into per-device groups, devices can be followed
// across the address space — counting trackable devices (§7.2), observing
// movement between ASes and countries including bulk IP-block transfers
// (§7.3), and inferring per-AS address-reassignment policies (§7.4,
// Figure 11).
package tracking

import (
	"sort"
	"time"

	"securepki/internal/analysis"
	"securepki/internal/linking"
	"securepki/internal/netsim"
	"securepki/internal/scanstore"
	"securepki/internal/stats"
)

// Entity is one tracked device: either a linked certificate group or a
// single unlinked certificate.
type Entity struct {
	Certs     []scanstore.CertID
	Sightings []scanstore.Sighting // chronological by scan
	Linked    bool
}

// Span returns the entity's observation window.
func (e *Entity) Span(corpus *scanstore.Corpus) time.Duration {
	if len(e.Sightings) == 0 {
		return 0
	}
	first := corpus.Scan(e.Sightings[0].Scan).Time
	last := corpus.Scan(e.Sightings[len(e.Sightings)-1].Scan).Time
	return last.Sub(first)
}

// Tracker derives device entities from a linking result.
type Tracker struct {
	ds       *analysis.Dataset
	entities []*Entity
}

// NewTracker merges the linking result into device entities: every linked
// group becomes one entity; every eligible-but-unlinked invalid certificate
// becomes its own entity.
func NewTracker(ds *analysis.Dataset, res linking.Result, linker *linking.Linker) *Tracker {
	t := &Tracker{ds: ds}
	inGroup := make(map[scanstore.CertID]bool)
	for _, g := range res.Groups {
		e := &Entity{Certs: g.Certs, Linked: true}
		for _, id := range g.Certs {
			inGroup[id] = true
			e.Sightings = append(e.Sightings, ds.Index.Sightings(id)...)
		}
		sort.Slice(e.Sightings, func(i, j int) bool { return e.Sightings[i].Scan < e.Sightings[j].Scan })
		t.entities = append(t.entities, e)
	}
	for _, rec := range ds.Corpus.Certs() {
		if !rec.Status.Invalid() || inGroup[rec.ID] {
			continue
		}
		// Certificates that failed the §6.2 uniqueness rule are shared
		// across devices and cannot stand for a single one.
		if linker != nil && !linker.IsEligible(rec.ID) {
			continue
		}
		sightings := ds.Index.Sightings(rec.ID)
		if len(sightings) == 0 {
			continue
		}
		t.entities = append(t.entities, &Entity{
			Certs:     []scanstore.CertID{rec.ID},
			Sightings: sightings,
		})
	}
	return t
}

// Entities returns every derived device entity.
func (t *Tracker) Entities() []*Entity { return t.entities }

// TrackableReport is §7.2.
type TrackableReport struct {
	// Baseline devices are trackable without linking: single certificates
	// observed for at least MinSpan (paper: 5,585,965).
	Baseline int
	// WithLinking counts entities (groups or single certs) spanning at
	// least MinSpan (paper: 6,750,744, +17.2%).
	WithLinking int
	MinSpan     time.Duration
}

// Gain returns the relative increase linking provides.
func (r TrackableReport) Gain() float64 {
	if r.Baseline == 0 {
		return 0
	}
	return float64(r.WithLinking)/float64(r.Baseline) - 1
}

// Trackable computes §7.2 with the paper's one-year threshold.
func (t *Tracker) Trackable(minSpan time.Duration) TrackableReport {
	rep := TrackableReport{MinSpan: minSpan}
	for _, e := range t.entities {
		if t.ds.Corpus == nil {
			continue
		}
		span := e.Span(t.ds.Corpus)
		if span < minSpan {
			continue
		}
		rep.WithLinking++
		if !e.Linked {
			rep.Baseline++
		}
	}
	return rep
}

// asAt returns the AS observed for a sighting.
func (t *Tracker) asAt(sg scanstore.Sighting) *netsim.AS {
	return t.ds.Internet.Lookup(sg.IP, t.ds.Corpus.Scan(sg.Scan).Time)
}

// asTimeline collapses an entity's sightings into its sequence of distinct
// consecutive (scan, ASN) steps.
type asStep struct {
	scan scanstore.ScanID
	as   *netsim.AS
}

func (t *Tracker) asTimeline(e *Entity) []asStep {
	var steps []asStep
	for _, sg := range e.Sightings {
		as := t.asAt(sg)
		if as == nil {
			continue
		}
		if n := len(steps); n > 0 && steps[n-1].as.ASN == as.ASN {
			steps[n-1].scan = sg.Scan
			continue
		}
		steps = append(steps, asStep{scan: sg.Scan, as: as})
	}
	return steps
}

// BulkTransfer is one detected mass movement of devices between two ASes
// within one scan interval (§7.3's IP-block transfers).
type BulkTransfer struct {
	FromASN, ToASN int
	ScanTo         scanstore.ScanID
	Devices        int
}

// MovementReport is §7.3.
type MovementReport struct {
	TrackedDevices   int
	DevicesChanging  int // changed AS at least once (paper: 718,495)
	TotalTransitions int // paper: 1,328,223
	// ChangedOnceFrac of the devices that changed, changed exactly once
	// (paper: 69.7%).
	ChangedOnceFrac float64
	// CountryMoves counts devices that ever moved between countries
	// (paper: 45,450).
	CountryMoves int
	// BulkTransfers lists (from, to, interval) movements of at least
	// BulkThreshold devices.
	BulkTransfers []BulkTransfer
	BulkThreshold int
	// BulkDeviceMoves is the number of device movements covered by bulk
	// transfers (paper: 343,687 in 1,159 events).
	BulkDeviceMoves int
}

// Movement computes §7.3 over entities spanning at least minSpan.
// bulkThreshold is the minimum devices moving AS→AS in one scan interval to
// call it a block transfer (the paper uses 50 at full Internet scale).
func (t *Tracker) Movement(minSpan time.Duration, bulkThreshold int) MovementReport {
	rep := MovementReport{BulkThreshold: bulkThreshold}
	type edge struct {
		from, to int
		scan     scanstore.ScanID
	}
	edgeCounts := make(map[edge]int)
	for _, e := range t.entities {
		if e.Span(t.ds.Corpus) < minSpan {
			continue
		}
		rep.TrackedDevices++
		steps := t.asTimeline(e)
		if len(steps) < 2 {
			continue
		}
		rep.DevicesChanging++
		rep.TotalTransitions += len(steps) - 1
		if len(steps) == 2 {
			rep.ChangedOnceFrac++ // numerator; normalised below
		}
		countries := false
		for i := 1; i < len(steps); i++ {
			if steps[i].as.Country != steps[i-1].as.Country {
				countries = true
			}
			edgeCounts[edge{from: steps[i-1].as.ASN, to: steps[i].as.ASN, scan: steps[i].scan}]++
		}
		if countries {
			rep.CountryMoves++
		}
	}
	if rep.DevicesChanging > 0 {
		rep.ChangedOnceFrac /= float64(rep.DevicesChanging)
	}
	for e, n := range edgeCounts {
		if n >= bulkThreshold {
			rep.BulkTransfers = append(rep.BulkTransfers, BulkTransfer{
				FromASN: e.from, ToASN: e.to, ScanTo: e.scan, Devices: n,
			})
			rep.BulkDeviceMoves += n
		}
	}
	sort.Slice(rep.BulkTransfers, func(i, j int) bool {
		return rep.BulkTransfers[i].Devices > rep.BulkTransfers[j].Devices
	})
	return rep
}

// ASReassignment is one AS's inferred policy (§7.4).
type ASReassignment struct {
	ASN            int
	Org            string
	TrackedDevices int
	// StaticFrac of devices kept one address across the whole dataset while
	// being observed for at least a year.
	StaticFrac float64
	// PerScanChurnFrac is the mean, over the AS's tracked devices, of the
	// fraction of consecutive-observation pairs where the address changed;
	// 1.0 means every device renumbers between every scan.
	PerScanChurnFrac float64
}

// ReassignmentReport is §7.4 / Figure 11.
type ReassignmentReport struct {
	PerAS []ASReassignment
	// StaticFracCDF is Figure 11: the distribution over ASes of the
	// static-device fraction.
	StaticFracCDF *stats.CDF
	// MostlyStaticASes assign static addresses to at least 90% of their
	// devices (paper: 56.3% of ASes); HighlyDynamicASes renumber >=75% of
	// devices every scan (paper: 15).
	MostlyStaticASes  int
	HighlyDynamicASes int
}

// Reassignment computes §7.4 over entities observed at least minSpan, for
// ASes with at least minDevices tracked devices (paper: 10).
func (t *Tracker) Reassignment(minSpan time.Duration, minDevices int) ReassignmentReport {
	type acc struct {
		as       *netsim.AS
		devices  int
		static   int
		churnSum float64
	}
	perAS := make(map[int]*acc)
	for _, e := range t.entities {
		if e.Span(t.ds.Corpus) < minSpan || len(e.Sightings) < 2 {
			continue
		}
		// Dominant AS over the entity's sightings.
		counts := make(map[int]int)
		var dom *netsim.AS
		var domN int
		for _, sg := range e.Sightings {
			if as := t.asAt(sg); as != nil {
				counts[as.ASN]++
				if counts[as.ASN] > domN {
					domN = counts[as.ASN]
					dom = as
				}
			}
		}
		if dom == nil {
			continue
		}
		// Judge the AS's assignment policy only by the device's sightings
		// inside that AS: a device that later switched ISPs should not make
		// its old ISP look dynamic.
		ips := make(map[netsim.IP]bool)
		changes, pairs := 0, 0
		var prev netsim.IP
		havePrev := false
		for _, sg := range e.Sightings {
			if as := t.asAt(sg); as == nil || as.ASN != dom.ASN {
				continue
			}
			ips[sg.IP] = true
			if havePrev {
				pairs++
				if sg.IP != prev {
					changes++
				}
			}
			prev = sg.IP
			havePrev = true
		}
		a := perAS[dom.ASN]
		if a == nil {
			a = &acc{as: dom}
			perAS[dom.ASN] = a
		}
		a.devices++
		if len(ips) == 1 {
			a.static++
		}
		if pairs > 0 {
			a.churnSum += float64(changes) / float64(pairs)
		}
	}

	rep := ReassignmentReport{}
	for _, a := range perAS {
		if a.devices < minDevices {
			continue
		}
		r := ASReassignment{
			ASN:              a.as.ASN,
			Org:              a.as.Org,
			TrackedDevices:   a.devices,
			StaticFrac:       float64(a.static) / float64(a.devices),
			PerScanChurnFrac: a.churnSum / float64(a.devices),
		}
		rep.PerAS = append(rep.PerAS, r)
		if r.StaticFrac >= 0.9 {
			rep.MostlyStaticASes++
		}
		if r.PerScanChurnFrac >= 0.75 {
			rep.HighlyDynamicASes++
		}
	}
	sort.Slice(rep.PerAS, func(i, j int) bool { return rep.PerAS[i].ASN < rep.PerAS[j].ASN })
	// Derive the CDF input from the ASN-sorted rows, not the map walk, so
	// the samples slice is deterministic (NewCDF re-sorts, but the contract
	// is that nothing order-sensitive leaves a map range unsorted).
	fracs := make([]float64, len(rep.PerAS))
	for i, r := range rep.PerAS {
		fracs[i] = r.StaticFrac
	}
	rep.StaticFracCDF = stats.NewCDF(fracs)
	return rep
}
