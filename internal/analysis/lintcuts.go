package analysis

import (
	"fmt"
	"sort"
	"strings"

	"securepki/internal/certlint"
	"securepki/internal/netsim"
	"securepki/internal/scanstore"
	"securepki/internal/x509lite"
)

// The paper attributes invalid certificates to issuers, networks and device
// populations (§5.3–§5.5). LintCuts applies the same attribution to lint
// findings: given a corpus lint run — live from certlint.RunCorpus or loaded
// back from a persisted findings column — it cuts the findings by device
// class, by issuer, and by dominant AS, so a structural defect can be traced
// to the population that ships it.

// LintCutRow aggregates the findings attributed to one group.
type LintCutRow struct {
	Label    string
	Certs    int // observed certificates in the group carrying >=1 finding
	Findings int
	// BySeverity counts findings per severity, indexed by certlint.Severity.
	BySeverity [certlint.NumSeverities]int
	// TopLint is the group's most frequent lint ID (ties break toward the
	// lexically smaller ID) and TopLintN its count.
	TopLint  string
	TopLintN int
}

// LintCutsReport is the downstream view of one corpus lint run.
type LintCutsReport struct {
	// Certs / Findings cover every observed certificate with findings.
	Certs      int
	Findings   int
	BySeverity [certlint.NumSeverities]int

	// ByDeviceClass covers all groups; ByIssuer and ByAS keep the topN.
	ByDeviceClass []LintCutRow
	ByIssuer      []LintCutRow
	ByAS          []LintCutRow
}

// FindingsByFingerprint indexes a corpus lint run for attribution joins.
func FindingsByFingerprint(results []certlint.CertFindings) map[x509lite.Fingerprint][]certlint.Finding {
	m := make(map[x509lite.Fingerprint][]certlint.Finding, len(results))
	for _, cf := range results {
		if len(cf.Findings) > 0 {
			m[cf.Fingerprint] = cf.Findings
		}
	}
	return m
}

// lintCutAccum accumulates one group before rank extraction.
type lintCutAccum struct {
	certs    int
	findings int
	bySev    [certlint.NumSeverities]int
	perLint  map[string]int
}

func (a *lintCutAccum) add(findings []certlint.Finding) {
	a.certs++
	for _, f := range findings {
		a.findings++
		if f.Severity >= 0 && int(f.Severity) < certlint.NumSeverities {
			a.bySev[f.Severity]++
		}
		if a.perLint == nil {
			a.perLint = make(map[string]int)
		}
		a.perLint[f.LintID]++
	}
}

// LintCuts joins findings (keyed by certificate fingerprint, as produced by
// FindingsByFingerprint or a loaded findings column) against the dataset and
// cuts them by device class, issuer, and dominant AS. Certificates without
// findings, and findings for certificates never observed on the wire, are
// excluded. topN bounds the issuer and AS tables; the device-class table is
// always complete.
func (d *Dataset) LintCuts(findings map[x509lite.Fingerprint][]certlint.Finding, topN int) LintCutsReport {
	byDevice := make(map[string]*lintCutAccum)
	byIssuer := make(map[string]*lintCutAccum)
	byAS := make(map[string]*lintCutAccum)
	var rep LintCutsReport

	accumInto := func(m map[string]*lintCutAccum, label string, fs []certlint.Finding) {
		a := m[label]
		if a == nil {
			a = &lintCutAccum{}
			m[label] = a
		}
		a.add(fs)
	}

	d.EachObserved(func(rec *scanstore.CertRecord, invalid bool) {
		fs := findings[rec.Cert.Fingerprint()]
		if len(fs) == 0 {
			return
		}
		rep.Certs++
		for _, f := range fs {
			rep.Findings++
			if f.Severity >= 0 && int(f.Severity) < certlint.NumSeverities {
				rep.BySeverity[f.Severity]++
			}
		}

		accumInto(byDevice, ClassifyDevice(rec.Cert), fs)

		issuer := rec.Cert.Issuer.CommonName
		if issuer == "" {
			issuer = emptyIssuerLabel
		}
		accumInto(byIssuer, issuer, fs)

		// Dominant-AS attribution, same rule as ASDiversity: the AS that
		// advertised the certificate most often wins.
		seen := make(map[int]int)
		var domAS *netsim.AS
		domCount := 0
		for _, sg := range d.Index.Sightings(rec.ID) {
			as := d.Internet.Lookup(sg.IP, d.Corpus.Scan(sg.Scan).Time)
			if as == nil {
				continue
			}
			seen[as.ASN]++
			if seen[as.ASN] > domCount {
				domCount = seen[as.ASN]
				domAS = as
			}
		}
		if domAS != nil {
			accumInto(byAS, domAS.Name(), fs)
		}
	})

	rep.ByDeviceClass = rankLintCut(byDevice, 0)
	rep.ByIssuer = rankLintCut(byIssuer, topN)
	rep.ByAS = rankLintCut(byAS, topN)
	return rep
}

// rankLintCut extracts a deterministic table from a group map: rows sorted by
// findings desc, then certs desc, then label asc; topN <= 0 keeps all rows.
func rankLintCut(m map[string]*lintCutAccum, topN int) []LintCutRow {
	rows := make([]LintCutRow, 0, len(m))
	for label, a := range m {
		row := LintCutRow{
			Label:      label,
			Certs:      a.certs,
			Findings:   a.findings,
			BySeverity: a.bySev,
		}
		for id, n := range a.perLint {
			if n > row.TopLintN || (n == row.TopLintN && id < row.TopLint) {
				row.TopLint, row.TopLintN = id, n
			}
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Findings != rows[j].Findings {
			return rows[i].Findings > rows[j].Findings
		}
		if rows[i].Certs != rows[j].Certs {
			return rows[i].Certs > rows[j].Certs
		}
		return rows[i].Label < rows[j].Label
	})
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	return rows
}

// FormatLintCuts renders the report's three tables for terminal output.
func FormatLintCuts(rep LintCutsReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Lint findings over observed certificates: %d findings on %d certs", rep.Findings, rep.Certs)
	fmt.Fprintf(&b, " (INFO %d, WARN %d, ERROR %d, FATAL %d)\n\n",
		rep.BySeverity[certlint.Info], rep.BySeverity[certlint.Warn],
		rep.BySeverity[certlint.Error], rep.BySeverity[certlint.Fatal])
	formatLintCutTable(&b, "By device class", rep.ByDeviceClass)
	formatLintCutTable(&b, "By issuer", rep.ByIssuer)
	formatLintCutTable(&b, "By AS", rep.ByAS)
	return b.String()
}

func formatLintCutTable(b *strings.Builder, title string, rows []LintCutRow) {
	fmt.Fprintf(b, "%s\n%-46s %8s %9s  %s\n", title, "group", "certs", "findings", "top lint")
	for _, r := range rows {
		label := r.Label
		if len(label) > 46 {
			label = label[:43] + "..."
		}
		fmt.Fprintf(b, "%-46s %8d %9d  %s (%d)\n", label, r.Certs, r.Findings, r.TopLint, r.TopLintN)
	}
	b.WriteString("\n")
}
