package analysis

import (
	"encoding/hex"

	"securepki/internal/scanstore"
	"securepki/internal/stats"
)

// IssuerReport is Table 1 plus the §5.3 parent-key diversity findings.
type IssuerReport struct {
	// TopValid / TopInvalid are the most frequent issuer Common Names
	// (Table 1). Empty issuer CNs are rendered as "(Empty string)".
	TopValid   []stats.RankedItem
	TopInvalid []stats.RankedItem

	// Parent-key diversity (§5.3). Valid certificates concentrate on a
	// handful of CA signing keys; invalid certificates with an Authority
	// Key ID spread over vastly more parent keys.
	ValidParentKeys        int
	InvalidParentKeys      int
	ValidKeysForHalf       int     // paper: 5 keys cover 50% of valid certs
	InvalidTop5KeyCoverage float64 // paper: top-5 cover only 37% of AKI'd invalid certs
}

const emptyIssuerLabel = "(Empty string)"

// Issuers computes Table 1 and §5.3 over the observed corpus.
func (d *Dataset) Issuers(topN int) IssuerReport {
	validCN := stats.NewCounter()
	invalidCN := stats.NewCounter()
	validKeys := stats.NewCounter()
	invalidAKI := stats.NewCounter()

	d.EachObserved(func(rec *scanstore.CertRecord, invalid bool) {
		cn := rec.Cert.Issuer.CommonName
		if cn == "" {
			cn = emptyIssuerLabel
		}
		if invalid {
			invalidCN.Inc(cn)
			if len(rec.Cert.AuthorityKeyID) > 0 {
				invalidAKI.Inc(hex.EncodeToString(rec.Cert.AuthorityKeyID))
			}
		} else {
			validCN.Inc(cn)
			// For valid certificates the issuer name identifies the signing
			// key one-to-one in the web PKI; use the AKI when present and
			// fall back to the name.
			key := hex.EncodeToString(rec.Cert.AuthorityKeyID)
			if key == "" {
				key = "name:" + cn
			}
			validKeys.Inc(key)
		}
	})

	rep := IssuerReport{
		TopValid:          validCN.Top(topN),
		TopInvalid:        invalidCN.Top(topN),
		ValidParentKeys:   validKeys.Len(),
		InvalidParentKeys: invalidAKI.Len(),
	}
	validCurve := stats.CoverageCurve(validKeys.Values())
	rep.ValidKeysForHalf = stats.ItemsForCoverage(validCurve, 0.5)
	invalidCurve := stats.CoverageCurve(invalidAKI.Values())
	if len(invalidCurve) >= 5 {
		rep.InvalidTop5KeyCoverage = invalidCurve[4]
	} else if len(invalidCurve) > 0 {
		rep.InvalidTop5KeyCoverage = invalidCurve[len(invalidCurve)-1]
	}
	return rep
}
