package analysis

import (
	"sort"
	"strings"

	"securepki/internal/scanstore"
	"securepki/internal/stats"
	"securepki/internal/x509lite"
)

// The paper's Table 4 was produced by manually inspecting the certificates of
// the top 50 invalid issuers (model numbers in names, loading the device web
// pages). This classifier is the codified equivalent: a rule base over
// issuer and subject strings. Rules are ordered; first match wins.

// DeviceClass labels from Table 4.
const (
	ClassRouter      = "Home router/cable modem"
	ClassUnknown     = "Unknown"
	ClassVPN         = "VPN"
	ClassStorage     = "Remote storage"
	ClassRemoteAdmin = "Remote administration"
	ClassFirewall    = "Firewall"
	ClassIPCamera    = "IP camera"
	ClassOther       = "Other (IPTV, IP phone, Alternate CA, Printer)"
)

type deviceRule struct {
	class    string
	patterns []string // matched case-insensitively against issuer CN + subject CN
}

var deviceRules = []deviceRule{
	{ClassVPN, []string{"vpn", "securegate", "ike", "ipsec"}},
	{ClassFirewall, []string{"fw ", "firewall", "perimeter"}},
	{ClassStorage, []string{"wd2go", "remotewd", "mycloud", "nas", "storage"}},
	{ClassIPCamera, []string{"ipcam", "camera", "netcam", "dvr"}},
	{ClassRemoteAdmin, []string{"vmware", "ilo", "idrac", "appliance", "esx", "management"}},
	{ClassOther, []string{"printer", "iptv", "ip phone", "voip", "embedded https"}},
	{ClassRouter, []string{"fritz", "lancom", "router", "gateway", "dsl", "cable modem", "192.168.", "10.0.", "myfritz"}},
}

// ClassifyDevice assigns a Table 4 class to one certificate.
func ClassifyDevice(cert *x509lite.Certificate) string {
	hay := strings.ToLower(cert.Issuer.CommonName + " | " + cert.Subject.CommonName)
	for _, dns := range cert.DNSNames {
		hay += " | " + strings.ToLower(dns)
	}
	for _, rule := range deviceRules {
		for _, p := range rule.patterns {
			if strings.Contains(hay, p) {
				return rule.class
			}
		}
	}
	// An IP-address CN with no other hints is the classic consumer router.
	if looksLikeIPv4(cert.Subject.CommonName) {
		return ClassRouter
	}
	return ClassUnknown
}

// DeviceTypeRow is one line of Table 4.
type DeviceTypeRow struct {
	Class    string
	Fraction float64
	Count    int
}

// DeviceTypes reproduces Table 4: classify the invalid certificates belonging
// to the topIssuers most frequent invalid issuers.
func (d *Dataset) DeviceTypes(topIssuers int) []DeviceTypeRow {
	issuerCounts := stats.NewCounter()
	d.EachObserved(func(rec *scanstore.CertRecord, invalid bool) {
		if !invalid {
			return
		}
		cn := rec.Cert.Issuer.CommonName
		if cn == "" {
			cn = emptyIssuerLabel
		}
		issuerCounts.Inc(cn)
	})
	top := make(map[string]bool)
	for _, item := range issuerCounts.Top(topIssuers) {
		top[item.Label] = true
	}

	classCounts := stats.NewCounter()
	total := 0
	d.EachObserved(func(rec *scanstore.CertRecord, invalid bool) {
		if !invalid {
			return
		}
		cn := rec.Cert.Issuer.CommonName
		if cn == "" {
			cn = emptyIssuerLabel
		}
		if !top[cn] {
			return
		}
		classCounts.Inc(ClassifyDevice(rec.Cert))
		total++
	})

	rows := make([]DeviceTypeRow, 0, classCounts.Len())
	for class, n := range classCounts.Map() {
		rows = append(rows, DeviceTypeRow{Class: class, Count: n, Fraction: float64(n) / float64(total)})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Class < rows[j].Class
	})
	return rows
}

func looksLikeIPv4(s string) bool {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return false
	}
	for _, p := range parts {
		if len(p) == 0 || len(p) > 3 {
			return false
		}
		for _, c := range p {
			if c < '0' || c > '9' {
				return false
			}
		}
	}
	return true
}
