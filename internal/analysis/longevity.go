package analysis

import (
	"time"

	"securepki/internal/scanstore"
	"securepki/internal/stats"
)

// LongevityReport carries the §5.1 distributions: Figure 3 (validity
// periods), Figure 4 (lifetimes) and Figure 5 (NotBefore gap of ephemeral
// certificates).
type LongevityReport struct {
	ValidPeriods   *stats.CDF // days
	InvalidPeriods *stats.CDF

	ValidLifetimes   *stats.CDF // days
	InvalidLifetimes *stats.CDF

	// NegativePeriodFrac is the share of invalid certificates whose
	// NotAfter precedes NotBefore (paper: 5.38%).
	NegativePeriodFrac float64
	// SingleScanInvalidFrac is the share of invalid certificates observed
	// in exactly one scan (paper: ~60%).
	SingleScanInvalidFrac float64

	// NotBeforeGap is Figure 5: first-advertised minus NotBefore, in days,
	// over ephemeral (single-scan) invalid certificates. Negative gaps
	// (clock-ahead devices) are included in the CDF's domain.
	NotBeforeGap *stats.CDF
	// SameDayFrac of ephemeral certs were first seen on their NotBefore day
	// (paper: ~30%); NegativeGapFrac had NotBefore after first sighting
	// (paper: 2.9%); Beyond1000Frac exceeded 1000 days (paper: ~20%).
	SameDayFrac     float64
	NegativeGapFrac float64
	Beyond1000Frac  float64
}

func dateOf(t time.Time) time.Time {
	return time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, time.UTC)
}

// Longevity computes the §5.1 report.
func (d *Dataset) Longevity() LongevityReport {
	var validVP, invalidVP, validLT, invalidLT, gaps []float64
	var negative, invalidTotal, singleScan, sameDay, negGap, far int

	d.EachObserved(func(rec *scanstore.CertRecord, invalid bool) {
		vp := rec.Cert.ValidityDays()
		lt, _ := d.Index.LifetimeDays(rec.ID)
		if !invalid {
			validVP = append(validVP, vp)
			validLT = append(validLT, float64(lt))
			return
		}
		invalidTotal++
		invalidVP = append(invalidVP, vp)
		invalidLT = append(invalidLT, float64(lt))
		if vp < 0 {
			negative++
		}
		if len(d.Index.ScansSeen(rec.ID)) == 1 {
			singleScan++
			first, _ := d.Index.FirstSeen(rec.ID)
			// The paper compares *dates*: a certificate minted mid-scan and
			// observed the same day has a gap of zero, not a negative
			// few hours.
			gap := dateOf(first).Sub(dateOf(rec.Cert.NotBefore)).Hours() / 24
			gaps = append(gaps, gap)
			switch {
			case gap < 0:
				negGap++
			case gap < 1:
				sameDay++
			case gap > 1000:
				far++
			}
		}
	})

	rep := LongevityReport{
		ValidPeriods:     stats.NewCDF(validVP),
		InvalidPeriods:   stats.NewCDF(invalidVP),
		ValidLifetimes:   stats.NewCDF(validLT),
		InvalidLifetimes: stats.NewCDF(invalidLT),
		NotBeforeGap:     stats.NewCDF(gaps),
	}
	if invalidTotal > 0 {
		rep.NegativePeriodFrac = float64(negative) / float64(invalidTotal)
		rep.SingleScanInvalidFrac = float64(singleScan) / float64(invalidTotal)
	}
	if singleScan > 0 {
		rep.SameDayFrac = float64(sameDay) / float64(singleScan)
		rep.NegativeGapFrac = float64(negGap) / float64(singleScan)
		rep.Beyond1000Frac = float64(far) / float64(singleScan)
	}
	return rep
}

// KeySharingReport is §5.2 / Figure 6.
type KeySharingReport struct {
	// ValidCurve / InvalidCurve are Figure 6's (fraction of keys, fraction
	// of certificates) series.
	ValidCurve   []stats.Point
	InvalidCurve []stats.Point

	// SharingInvalidFrac is the share of invalid certificates whose public
	// key appears in at least one other certificate (paper: 47%); likewise
	// for valid.
	SharingInvalidFrac float64
	SharingValidFrac   float64

	// TopKeyInvalidShare is the share of all invalid certificates carrying
	// the single most common key (paper: 6.5% — the Lancom key).
	TopKeyInvalidShare float64

	ValidKeys   int
	InvalidKeys int
}

// KeySharing computes §5.2 over the observed corpus.
func (d *Dataset) KeySharing() KeySharingReport {
	validKeys := stats.NewCounter()
	invalidKeys := stats.NewCounter()
	var nValid, nInvalid int
	d.EachObserved(func(rec *scanstore.CertRecord, invalid bool) {
		fp := rec.Cert.PublicKeyFingerprint().String()
		if invalid {
			invalidKeys.Inc(fp)
			nInvalid++
		} else {
			validKeys.Inc(fp)
			nValid++
		}
	})

	rep := KeySharingReport{
		ValidCurve:   stats.SharePairs(validKeys.Values(), 100),
		InvalidCurve: stats.SharePairs(invalidKeys.Values(), 100),
		ValidKeys:    validKeys.Len(),
		InvalidKeys:  invalidKeys.Len(),
	}
	shared := func(c *stats.Counter, total int) float64 {
		if total == 0 {
			return 0
		}
		n := 0
		for _, count := range c.Map() {
			if count > 1 {
				n += count
			}
		}
		return float64(n) / float64(total)
	}
	rep.SharingValidFrac = shared(validKeys, nValid)
	rep.SharingInvalidFrac = shared(invalidKeys, nInvalid)
	if top := invalidKeys.Top(1); len(top) == 1 && nInvalid > 0 {
		rep.TopKeyInvalidShare = float64(top[0].Count) / float64(nInvalid)
	}
	return rep
}
