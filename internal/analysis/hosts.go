package analysis

import (
	"fmt"

	"securepki/internal/netsim"
	"securepki/internal/scanstore"
	"securepki/internal/stats"
)

// HostDiversityReport is §5.4's IP-level view (Figure 7).
type HostDiversityReport struct {
	// ValidAvgIPs / InvalidAvgIPs: per certificate, the mean number of
	// distinct advertising addresses per scan.
	ValidAvgIPs   *stats.CDF
	InvalidAvgIPs *stats.CDF

	// SingleIPInvalidFrac: invalid certs only ever seen from one address
	// per scan. OverTwoIPsInvalidFrac: ever seen from >2 addresses in one
	// scan (paper: 1.6%, excluded by the §6.2 rule).
	SingleIPInvalidFrac   float64
	OverTwoIPsInvalidFrac float64
	MaxIPsForValidCert    int
}

// HostDiversity computes Figure 7.
func (d *Dataset) HostDiversity() HostDiversityReport {
	var validAvg, invalidAvg []float64
	var invTotal, invSingle, invOverTwo, maxValid int
	d.EachObserved(func(rec *scanstore.CertRecord, invalid bool) {
		avg := d.Index.AvgIPsPerScan(rec.ID)
		max := d.Index.MaxIPsInAnyScan(rec.ID)
		if invalid {
			invalidAvg = append(invalidAvg, avg)
			invTotal++
			if max <= 1 {
				invSingle++
			}
			if max > 2 {
				invOverTwo++
			}
		} else {
			validAvg = append(validAvg, avg)
			if max > maxValid {
				maxValid = max
			}
		}
	})
	rep := HostDiversityReport{
		ValidAvgIPs:        stats.NewCDF(validAvg),
		InvalidAvgIPs:      stats.NewCDF(invalidAvg),
		MaxIPsForValidCert: maxValid,
	}
	if invTotal > 0 {
		rep.SingleIPInvalidFrac = float64(invSingle) / float64(invTotal)
		rep.OverTwoIPsInvalidFrac = float64(invOverTwo) / float64(invTotal)
	}
	return rep
}

// ASDiversityReport is §5.4's AS-level view: Figure 8 and Tables 2–3.
type ASDiversityReport struct {
	// ValidASCounts / InvalidASCounts: per certificate, the number of
	// distinct ASes that ever advertised it (Figure 8's CDFs).
	ValidASCounts   *stats.CDF
	InvalidASCounts *stats.CDF

	// TopASInvalidShare: fraction of invalid certs whose dominant AS is the
	// single most popular one (paper: 18%, Deutsche Telekom).
	TopASInvalidShare float64
	TopASValidShare   float64
	// ASesFor70Invalid / ASesFor70Valid: how many ASes cover 70% of each
	// population (paper: 165 vs 500).
	ASesFor70Invalid int
	ASesFor70Valid   int

	// TypeBreakdown is Table 2: share of certificates per CAIDA AS type.
	ValidByType   map[netsim.ASType]float64
	InvalidByType map[netsim.ASType]float64

	// TopValidASes / TopInvalidASes are Table 3.
	TopValidASes   []stats.RankedItem
	TopInvalidASes []stats.RankedItem
}

// ASDiversity computes Figure 8 and Tables 2–3. Each certificate is
// attributed to the AS from which it was most frequently advertised.
func (d *Dataset) ASDiversity(topN int) ASDiversityReport {
	validPerAS := stats.NewCounter()
	invalidPerAS := stats.NewCounter()
	validTypes := make(map[netsim.ASType]int)
	invalidTypes := make(map[netsim.ASType]int)
	var validASCounts, invalidASCounts []float64
	var nValid, nInvalid int

	d.EachObserved(func(rec *scanstore.CertRecord, invalid bool) {
		seen := make(map[int]int) // ASN -> observation count
		var domAS *netsim.AS
		domCount := 0
		for _, sg := range d.Index.Sightings(rec.ID) {
			as := d.Internet.Lookup(sg.IP, d.Corpus.Scan(sg.Scan).Time)
			if as == nil {
				continue
			}
			seen[as.ASN]++
			if seen[as.ASN] > domCount {
				domCount = seen[as.ASN]
				domAS = as
			}
		}
		if domAS == nil {
			return
		}
		if invalid {
			nInvalid++
			invalidASCounts = append(invalidASCounts, float64(len(seen)))
			invalidPerAS.Inc(domAS.Name())
			invalidTypes[domAS.Type]++
		} else {
			nValid++
			validASCounts = append(validASCounts, float64(len(seen)))
			validPerAS.Inc(domAS.Name())
			validTypes[domAS.Type]++
		}
	})

	rep := ASDiversityReport{
		ValidASCounts:   stats.NewCDF(validASCounts),
		InvalidASCounts: stats.NewCDF(invalidASCounts),
		TopValidASes:    validPerAS.Top(topN),
		TopInvalidASes:  invalidPerAS.Top(topN),
		ValidByType:     make(map[netsim.ASType]float64),
		InvalidByType:   make(map[netsim.ASType]float64),
	}
	if top := invalidPerAS.Top(1); len(top) == 1 && nInvalid > 0 {
		rep.TopASInvalidShare = float64(top[0].Count) / float64(nInvalid)
	}
	if top := validPerAS.Top(1); len(top) == 1 && nValid > 0 {
		rep.TopASValidShare = float64(top[0].Count) / float64(nValid)
	}
	rep.ASesFor70Invalid = stats.ItemsForCoverage(stats.CoverageCurve(invalidPerAS.Values()), 0.7)
	rep.ASesFor70Valid = stats.ItemsForCoverage(stats.CoverageCurve(validPerAS.Values()), 0.7)
	for typ, n := range validTypes {
		rep.ValidByType[typ] = float64(n) / float64(nValid)
	}
	for typ, n := range invalidTypes {
		rep.InvalidByType[typ] = float64(n) / float64(nInvalid)
	}
	return rep
}

// FormatASTypeTable renders Table 2.
func FormatASTypeTable(rep ASDiversityReport) string {
	out := "AS Type          % of Valid  % of Invalid\n"
	for _, typ := range []netsim.ASType{netsim.TransitAccess, netsim.Content, netsim.Enterprise, netsim.UnknownType} {
		out += fmt.Sprintf("%-16s %9.1f%% %12.1f%%\n", typ, 100*rep.ValidByType[typ], 100*rep.InvalidByType[typ])
	}
	return out
}
