// Package analysis implements every §4–§5 measurement of the paper over a
// scan corpus: dataset discrepancy (Figure 1, §4.1), validation breakdown
// (§4.2, Figure 2), certificate longevity (Figures 3–5), key diversity
// (Figure 6), issuer diversity (Table 1, §5.3), host and AS diversity
// (Figures 7–8, Tables 2–3) and device-type classification (Table 4).
//
// Each analysis returns a typed report with the exact quantities the paper
// states, plus the curve/series data its figure plots; reports know how to
// render themselves for terminal output.
package analysis

import (
	"time"

	"securepki/internal/netsim"
	"securepki/internal/scanstore"
	"securepki/internal/truststore"
)

// Dataset bundles the corpus (already validated), its index, and the Internet
// model used to map addresses to prefixes and ASes.
type Dataset struct {
	Corpus   *scanstore.Corpus
	Index    *scanstore.Index
	Internet *netsim.Internet
}

// NewDataset builds the per-certificate index and wraps the inputs. The
// corpus must already have been validated (Corpus.Validate), or every
// certificate will count as valid.
func NewDataset(corpus *scanstore.Corpus, inet *netsim.Internet) *Dataset {
	return NewDatasetWorkers(corpus, inet, 0)
}

// NewDatasetWorkers is NewDataset with an explicit worker count for the
// index build (<= 0 means GOMAXPROCS); the index is identical at any count.
func NewDatasetWorkers(corpus *scanstore.Corpus, inet *netsim.Internet, workers int) *Dataset {
	return &Dataset{Corpus: corpus, Index: corpus.BuildIndexWorkers(workers), Internet: inet}
}

// NewDatasetExt builds the index through the external-merge path
// (Corpus.BuildIndexExt): sighting runs sort under cfg.MemBudget and spill to
// checksummed shards in cfg.Dir. The index — and everything derived from it —
// is identical to NewDatasetWorkers' at any budget.
func NewDatasetExt(corpus *scanstore.Corpus, inet *netsim.Internet, cfg scanstore.ExtIndexConfig) (*Dataset, error) {
	idx, err := corpus.BuildIndexExt(cfg)
	if err != nil {
		return nil, err
	}
	return &Dataset{Corpus: corpus, Index: idx, Internet: inet}, nil
}

// Invalid reports whether the certificate with the given ID is invalid.
func (d *Dataset) Invalid(id scanstore.CertID) bool {
	return d.Corpus.Cert(id).Status.Invalid()
}

// EachObserved calls fn for every certificate that was observed at least
// once, passing whether it is invalid.
func (d *Dataset) EachObserved(fn func(rec *scanstore.CertRecord, invalid bool)) {
	for _, rec := range d.Corpus.Certs() {
		if len(d.Index.Sightings(rec.ID)) == 0 {
			continue
		}
		fn(rec, rec.Status.Invalid())
	}
}

// ASOf maps an observation to its AS at the scan's date.
func (d *Dataset) ASOf(ip netsim.IP, at time.Time) *netsim.AS {
	return d.Internet.Lookup(ip, at)
}

// ValidationBreakdown is the §4.2 headline table.
type ValidationBreakdown struct {
	Total  int
	Counts map[truststore.Status]int
	// InvalidFraction is invalid/total over the whole corpus (paper: 87.9%).
	InvalidFraction float64
	// SelfSignedOfInvalid / UntrustedOfInvalid split the invalid population
	// (paper: 88.0% / 11.99%).
	SelfSignedOfInvalid float64
	UntrustedOfInvalid  float64
}

// Validation computes the §4.2 breakdown over all observed certificates.
func (d *Dataset) Validation() ValidationBreakdown {
	vb := ValidationBreakdown{Counts: make(map[truststore.Status]int)}
	d.EachObserved(func(rec *scanstore.CertRecord, invalid bool) {
		vb.Total++
		vb.Counts[rec.Status]++
	})
	invalid := vb.Total - vb.Counts[truststore.Valid]
	if vb.Total > 0 {
		vb.InvalidFraction = float64(invalid) / float64(vb.Total)
	}
	if invalid > 0 {
		vb.SelfSignedOfInvalid = float64(vb.Counts[truststore.SelfSigned]) / float64(invalid)
		vb.UntrustedOfInvalid = float64(vb.Counts[truststore.UntrustedIssuer]) / float64(invalid)
	}
	return vb
}

// ScanCount is one point of Figure 2: unique valid and invalid certificates
// in a single scan.
type ScanCount struct {
	Scan     scanstore.ScanID
	Operator scanstore.Operator
	Time     time.Time
	Valid    int
	Invalid  int
}

// InvalidFraction returns the scan's invalid share.
func (s ScanCount) InvalidFraction() float64 {
	if s.Valid+s.Invalid == 0 {
		return 0
	}
	return float64(s.Invalid) / float64(s.Valid+s.Invalid)
}

// CertCounts computes Figure 2's series plus the per-scan invalid-fraction
// summary of §4.2 (paper: 59.6%–73.7%, mean 65.0%).
func (d *Dataset) CertCounts() []ScanCount {
	out := make([]ScanCount, 0, d.Corpus.NumScans())
	for _, scan := range d.Corpus.Scans() {
		sc := ScanCount{Scan: scan.ID, Operator: scan.Operator, Time: scan.Time}
		seen := make(map[scanstore.CertID]bool)
		for _, obs := range scan.Obs {
			if seen[obs.Cert] {
				continue
			}
			seen[obs.Cert] = true
			if d.Invalid(obs.Cert) {
				sc.Invalid++
			} else {
				sc.Valid++
			}
		}
		out = append(out, sc)
	}
	return out
}

// MeanInvalidFraction averages the per-scan invalid shares.
func MeanInvalidFraction(counts []ScanCount) float64 {
	if len(counts) == 0 {
		return 0
	}
	var sum float64
	for _, c := range counts {
		sum += c.InvalidFraction()
	}
	return sum / float64(len(counts))
}
