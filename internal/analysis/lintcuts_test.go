package analysis

import (
	"reflect"
	"strings"
	"testing"

	"securepki/internal/certlint"
	"securepki/internal/x509lite"
)

// lintRun lints the whole fixture corpus with the default registry.
func lintRun(t *testing.T, d *Dataset, workers int) []certlint.CertFindings {
	t.Helper()
	certs := make([]*x509lite.Certificate, 0, d.Corpus.NumCerts())
	ctx := &certlint.Context{KeyCount: make(map[x509lite.Fingerprint]int)}
	for _, rec := range d.Corpus.Certs() {
		certs = append(certs, rec.Cert)
		ctx.KeyCount[rec.Cert.PublicKeyFingerprint()]++
	}
	return certlint.Default().RunCorpus(certs, ctx, certlint.Options{Workers: workers})
}

func TestLintCutsShape(t *testing.T) {
	d := dataset(t)
	findings := FindingsByFingerprint(lintRun(t, d, 4))
	rep := d.LintCuts(findings, 5)

	if rep.Certs == 0 || rep.Findings == 0 {
		t.Fatalf("empty report: %d certs, %d findings", rep.Certs, rep.Findings)
	}
	if rep.Findings < rep.Certs {
		t.Errorf("fewer findings (%d) than flagged certs (%d)", rep.Findings, rep.Certs)
	}
	sevSum := 0
	for _, n := range rep.BySeverity {
		sevSum += n
	}
	if sevSum != rep.Findings {
		t.Errorf("severity counts sum to %d, want %d", sevSum, rep.Findings)
	}

	// Device-class table is complete: every flagged cert lands in exactly one
	// class, and every label is a known Table 4 class.
	known := map[string]bool{
		ClassRouter: true, ClassUnknown: true, ClassVPN: true, ClassStorage: true,
		ClassRemoteAdmin: true, ClassFirewall: true, ClassIPCamera: true, ClassOther: true,
	}
	classCerts := 0
	for _, row := range rep.ByDeviceClass {
		if !known[row.Label] {
			t.Errorf("unknown device class %q", row.Label)
		}
		if row.TopLint == "" || row.TopLintN == 0 {
			t.Errorf("class %q has no top lint", row.Label)
		}
		classCerts += row.Certs
	}
	if classCerts != rep.Certs {
		t.Errorf("device classes cover %d certs, want %d", classCerts, rep.Certs)
	}

	if len(rep.ByIssuer) == 0 || len(rep.ByIssuer) > 5 {
		t.Fatalf("issuer rows = %d, want 1..5", len(rep.ByIssuer))
	}
	if len(rep.ByAS) == 0 || len(rep.ByAS) > 5 {
		t.Fatalf("AS rows = %d, want 1..5", len(rep.ByAS))
	}
	// netsim AS labels render as "#ASN Name (CC)".
	if !strings.HasPrefix(rep.ByAS[0].Label, "#") {
		t.Errorf("AS label = %q", rep.ByAS[0].Label)
	}
	// Tables are sorted by findings desc.
	for _, rows := range [][]LintCutRow{rep.ByDeviceClass, rep.ByIssuer, rep.ByAS} {
		for i := 1; i < len(rows); i++ {
			if rows[i-1].Findings < rows[i].Findings {
				t.Errorf("rows unsorted: %q (%d) before %q (%d)",
					rows[i-1].Label, rows[i-1].Findings, rows[i].Label, rows[i].Findings)
			}
		}
	}

	out := FormatLintCuts(rep)
	for _, want := range []string{"By device class", "By issuer", "By AS", "INFO"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
}

// TestLintCutsDeterministic pins that the cuts are identical whatever worker
// count produced the findings — the whole chain is order-independent.
func TestLintCutsDeterministic(t *testing.T) {
	d := dataset(t)
	serial := d.LintCuts(FindingsByFingerprint(lintRun(t, d, 1)), 5)
	parallel := d.LintCuts(FindingsByFingerprint(lintRun(t, d, 8)), 5)
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("lint cuts differ between serial and parallel lint runs")
	}
}

// TestLintCutsExcludesUnobserved pins the join rule: findings for fingerprints
// the corpus never saw on the wire do not count.
func TestLintCutsExcludesUnobserved(t *testing.T) {
	d := dataset(t)
	findings := FindingsByFingerprint(lintRun(t, d, 4))
	base := d.LintCuts(findings, 5)

	var ghost x509lite.Fingerprint
	ghost[0] = 0xFF
	findings[ghost] = []certlint.Finding{{LintID: "ghost", Version: 1, Severity: certlint.Fatal, Detail: "x"}}
	got := d.LintCuts(findings, 5)
	if !reflect.DeepEqual(base, got) {
		t.Error("findings for an unobserved fingerprint changed the report")
	}
	if got.BySeverity[certlint.Fatal] != base.BySeverity[certlint.Fatal] {
		t.Error("ghost FATAL finding counted")
	}
}
