package analysis

import (
	"sort"
	"time"

	"securepki/internal/netsim"
	"securepki/internal/scanstore"
)

// CoScanDays returns the days on which both operators ran a scan (the paper
// had eight such days).
func (d *Dataset) CoScanDays() []time.Time {
	byDay := make(map[time.Time]map[scanstore.Operator]bool)
	for _, s := range d.Corpus.Scans() {
		day := s.Day()
		if byDay[day] == nil {
			byDay[day] = make(map[scanstore.Operator]bool)
		}
		byDay[day][s.Operator] = true
	}
	var out []time.Time
	for day, ops := range byDay {
		if ops[scanstore.UMich] && ops[scanstore.Rapid7] {
			out = append(out, day)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

// scansOnDay returns the operator's scans falling on the given day.
func (d *Dataset) scansOnDay(day time.Time, op scanstore.Operator) []*scanstore.Scan {
	var out []*scanstore.Scan
	for _, s := range d.Corpus.Scans() {
		if s.Operator == op && s.Day().Equal(day) {
			out = append(out, s)
		}
	}
	return out
}

func hostSet(scans []*scanstore.Scan) map[netsim.IP]bool {
	set := make(map[netsim.IP]bool)
	for _, s := range scans {
		for _, o := range s.Obs {
			set[o.IP] = true
		}
	}
	return set
}

// Slash8Discrepancy is one bar group of Figure 1: within one /8, the fraction
// of responding hosts seen only by each operator.
type Slash8Discrepancy struct {
	Slash8         int
	UMichOnlyFrac  float64 // unique to UMich / all hosts in the /8
	Rapid7OnlyFrac float64
	HostsInSlash8  int
}

// DiscrepancyReport is Figure 1 plus its headline number (Rapid7 scans are
// ~20% smaller).
type DiscrepancyReport struct {
	Day         time.Time
	UMichHosts  int
	Rapid7Hosts int
	PerSlash8   []Slash8Discrepancy
	// UMichOnly / Rapid7Only are total host counts unique to each scan.
	UMichOnly  int
	Rapid7Only int
}

// Rapid7Deficit returns how much smaller the Rapid7 scan was.
func (r DiscrepancyReport) Rapid7Deficit() float64 {
	if r.UMichHosts == 0 {
		return 0
	}
	return 1 - float64(r.Rapid7Hosts)/float64(r.UMichHosts)
}

// ScanDiscrepancy reproduces Figure 1 for one co-scan day: per /8, the
// fraction of hosts unique to each operator's scan.
func (d *Dataset) ScanDiscrepancy(day time.Time) DiscrepancyReport {
	um := hostSet(d.scansOnDay(day, scanstore.UMich))
	r7 := hostSet(d.scansOnDay(day, scanstore.Rapid7))

	rep := DiscrepancyReport{Day: day, UMichHosts: len(um), Rapid7Hosts: len(r7)}
	type counts struct{ umOnly, r7Only, total int }
	per := make(map[int]*counts)
	bump := func(ip netsim.IP) *counts {
		c, ok := per[ip.Slash8()]
		if !ok {
			c = &counts{}
			per[ip.Slash8()] = c
		}
		return c
	}
	for ip := range um {
		c := bump(ip)
		c.total++
		if !r7[ip] {
			c.umOnly++
			rep.UMichOnly++
		}
	}
	for ip := range r7 {
		c := bump(ip)
		if !um[ip] {
			c.total++
			c.r7Only++
			rep.Rapid7Only++
		}
	}
	for s8, c := range per {
		if c.total == 0 {
			continue
		}
		rep.PerSlash8 = append(rep.PerSlash8, Slash8Discrepancy{
			Slash8:         s8,
			UMichOnlyFrac:  float64(c.umOnly) / float64(c.total),
			Rapid7OnlyFrac: float64(c.r7Only) / float64(c.total),
			HostsInSlash8:  c.total,
		})
	}
	sort.Slice(rep.PerSlash8, func(i, j int) bool { return rep.PerSlash8[i].Slash8 < rep.PerSlash8[j].Slash8 })
	return rep
}

// BlacklistReport quantifies §4.1's finding: prefixes that are consistently
// missing from exactly one operator explain most of the host discrepancy.
type BlacklistReport struct {
	CoScanDays int
	// PrefixesMissingFromUMich were present in every Rapid7 co-scan but
	// never in UMich's (paper: 1,906), and vice versa (paper: 11,624).
	PrefixesMissingFromUMich  int
	PrefixesMissingFromRapid7 int
	// ExplainedUMichOnly is the fraction of UMich-only host observations
	// that fall in prefixes Rapid7 never covered (paper: 74.0% the other
	// way; both directions reported).
	ExplainedUMichOnly  float64
	ExplainedRapid7Only float64
}

// BlacklistAttribution reproduces the §4.1 blacklisting analysis over all
// co-scan days.
func (d *Dataset) BlacklistAttribution() BlacklistReport {
	days := d.CoScanDays()
	rep := BlacklistReport{CoScanDays: len(days)}
	if len(days) == 0 {
		return rep
	}

	// Track per-prefix presence per operator across co-scan days.
	type presence struct{ um, r7 int }
	byPrefix := make(map[netsim.Prefix]*presence)
	perDayUM := make([]map[netsim.IP]bool, len(days))
	perDayR7 := make([]map[netsim.IP]bool, len(days))
	for i, day := range days {
		perDayUM[i] = hostSet(d.scansOnDay(day, scanstore.UMich))
		perDayR7[i] = hostSet(d.scansOnDay(day, scanstore.Rapid7))
		seenUM := make(map[netsim.Prefix]bool)
		seenR7 := make(map[netsim.Prefix]bool)
		for ip := range perDayUM[i] {
			if p, ok := d.Internet.PrefixOf(ip); ok {
				seenUM[p] = true
			}
		}
		for ip := range perDayR7[i] {
			if p, ok := d.Internet.PrefixOf(ip); ok {
				seenR7[p] = true
			}
		}
		for p := range seenUM {
			if byPrefix[p] == nil {
				byPrefix[p] = &presence{}
			}
			byPrefix[p].um++
		}
		for p := range seenR7 {
			if byPrefix[p] == nil {
				byPrefix[p] = &presence{}
			}
			byPrefix[p].r7++
		}
	}

	missingUM := make(map[netsim.Prefix]bool) // never in UMich, always in Rapid7
	missingR7 := make(map[netsim.Prefix]bool)
	for p, pres := range byPrefix {
		if pres.um == 0 && pres.r7 == len(days) {
			missingUM[p] = true
		}
		if pres.r7 == 0 && pres.um == len(days) {
			missingR7[p] = true
		}
	}
	rep.PrefixesMissingFromUMich = len(missingUM)
	rep.PrefixesMissingFromRapid7 = len(missingR7)

	// Attribute per-day unique hosts to the always-missing prefixes.
	var umOnly, umExplained, r7Only, r7Explained int
	for i := range days {
		for ip := range perDayUM[i] {
			if perDayR7[i][ip] {
				continue
			}
			umOnly++
			if p, ok := d.Internet.PrefixOf(ip); ok && missingR7[p] {
				umExplained++
			}
		}
		for ip := range perDayR7[i] {
			if perDayUM[i][ip] {
				continue
			}
			r7Only++
			if p, ok := d.Internet.PrefixOf(ip); ok && missingUM[p] {
				r7Explained++
			}
		}
	}
	if umOnly > 0 {
		rep.ExplainedUMichOnly = float64(umExplained) / float64(umOnly)
	}
	if r7Only > 0 {
		rep.ExplainedRapid7Only = float64(r7Explained) / float64(r7Only)
	}
	return rep
}

// Slash24Report is the footnote-6 refinement of Figure 1: how the
// operator-unique hosts distribute over /24 networks.
type Slash24Report struct {
	Day time.Time
	// TotalSlash24s seen by either operator that day.
	TotalSlash24s int
	// UMichOnly24s / Rapid7Only24s are /24s from which only one operator
	// saw any host at all — the blacklist signature at fine granularity.
	UMichOnly24s  int
	Rapid7Only24s int
	// MixedSlash24s saw hosts from both operators.
	MixedSlash24s int
}

// Slash24Discrepancy computes the /24-granularity view of a co-scan day.
func (d *Dataset) Slash24Discrepancy(day time.Time) Slash24Report {
	um := hostSet(d.scansOnDay(day, scanstore.UMich))
	r7 := hostSet(d.scansOnDay(day, scanstore.Rapid7))
	type pres struct{ um, r7 bool }
	per := make(map[netsim.IP]*pres)
	get := func(ip netsim.IP) *pres {
		key := ip.Slash24()
		p, ok := per[key]
		if !ok {
			p = &pres{}
			per[key] = p
		}
		return p
	}
	for ip := range um {
		get(ip).um = true
	}
	for ip := range r7 {
		get(ip).r7 = true
	}
	rep := Slash24Report{Day: day, TotalSlash24s: len(per)}
	for _, p := range per {
		switch {
		case p.um && p.r7:
			rep.MixedSlash24s++
		case p.um:
			rep.UMichOnly24s++
		default:
			rep.Rapid7Only24s++
		}
	}
	return rep
}
