package analysis

import (
	"sync"
	"testing"

	"securepki/internal/devicesim"
	"securepki/internal/netsim"
	"securepki/internal/scanner"
	"securepki/internal/scanstore"
	"securepki/internal/truststore"
	"securepki/internal/x509lite"
)

// The analysis tests share one generated corpus: building worlds is the
// expensive part, and every analysis reads it without mutation.
var (
	fixtureOnce sync.Once
	fixture     *Dataset
	fixtureErr  error
)

func dataset(t *testing.T) *Dataset {
	t.Helper()
	fixtureOnce.Do(func() {
		wcfg := devicesim.DefaultConfig()
		wcfg.NumDevices = 2200
		wcfg.NumSites = 950
		world, err := devicesim.BuildWorld(wcfg)
		if err != nil {
			fixtureErr = err
			return
		}
		scfg := scanner.DefaultConfig()
		scfg.UMichScans = 18
		scfg.Rapid7Scans = 9
		camp, err := scanner.New(world, scfg)
		if err != nil {
			fixtureErr = err
			return
		}
		corpus, _, err := camp.Run()
		if err != nil {
			fixtureErr = err
			return
		}
		store := truststore.NewStore()
		for _, r := range world.Roots() {
			store.AddRoot(r)
		}
		corpus.Validate(store)
		fixture = NewDataset(corpus, world.Internet)
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixture
}

func TestValidationBreakdownShape(t *testing.T) {
	d := dataset(t)
	vb := d.Validation()
	if vb.Total == 0 {
		t.Fatal("no observed certificates")
	}
	// Paper: 87.9% invalid overall; the scaled corpus lands 85–95%.
	if vb.InvalidFraction < 0.80 || vb.InvalidFraction > 0.97 {
		t.Errorf("invalid fraction = %.3f", vb.InvalidFraction)
	}
	// Paper: 88.0% self-signed, 11.99% untrusted.
	if vb.SelfSignedOfInvalid < 0.80 || vb.SelfSignedOfInvalid > 0.95 {
		t.Errorf("self-signed of invalid = %.3f", vb.SelfSignedOfInvalid)
	}
	if vb.UntrustedOfInvalid < 0.04 || vb.UntrustedOfInvalid > 0.20 {
		t.Errorf("untrusted of invalid = %.3f", vb.UntrustedOfInvalid)
	}
}

func TestCertCountsPerScan(t *testing.T) {
	d := dataset(t)
	counts := d.CertCounts()
	if len(counts) != d.Corpus.NumScans() {
		t.Fatalf("counts for %d scans", len(counts))
	}
	mean := MeanInvalidFraction(counts)
	// Paper: per-scan invalid fraction 59.6%–73.7%, mean 65%.
	if mean < 0.5 || mean > 0.8 {
		t.Errorf("mean per-scan invalid fraction = %.3f", mean)
	}
	// Figure 2: populations grow over time within each operator's series.
	firstByOp := map[scanstore.Operator]ScanCount{}
	lastByOp := map[scanstore.Operator]ScanCount{}
	for _, c := range counts {
		if _, ok := firstByOp[c.Operator]; !ok {
			firstByOp[c.Operator] = c
		}
		lastByOp[c.Operator] = c
	}
	for op, first := range firstByOp {
		last := lastByOp[op]
		if last.Scan == first.Scan {
			continue
		}
		if last.Invalid <= first.Invalid {
			t.Errorf("%v invalid population did not grow: %d -> %d", op, first.Invalid, last.Invalid)
		}
	}
}

func TestLongevityShape(t *testing.T) {
	d := dataset(t)
	rep := d.Longevity()

	// Figure 3: valid median ~1.1y (our products: 365d), p90 ~3y; invalid
	// median ~20 years.
	if med := rep.ValidPeriods.Median(); med < 300 || med > 500 {
		t.Errorf("valid validity median = %.0f days", med)
	}
	if med := rep.InvalidPeriods.Median(); med < 10*365 || med > 28*365 {
		t.Errorf("invalid validity median = %.0f days", med)
	}
	if p90 := rep.InvalidPeriods.Percentile(0.9); p90 < 20*365 {
		t.Errorf("invalid validity p90 = %.0f days", p90)
	}
	// Paper: 5.38% negative.
	if rep.NegativePeriodFrac < 0.01 || rep.NegativePeriodFrac > 0.12 {
		t.Errorf("negative period fraction = %.3f", rep.NegativePeriodFrac)
	}

	// Figure 4: invalid lifetime median one day; valid much longer.
	if med := rep.InvalidLifetimes.Median(); med != 1 {
		t.Errorf("invalid lifetime median = %.0f days, want 1", med)
	}
	if med := rep.ValidLifetimes.Median(); med < 100 {
		t.Errorf("valid lifetime median = %.0f days", med)
	}
	if rep.SingleScanInvalidFrac < 0.4 {
		t.Errorf("single-scan invalid fraction = %.3f", rep.SingleScanInvalidFrac)
	}

	// Figure 5: bimodal gap — most ephemeral certs minted within days of
	// first sighting, a fat tail >1000 days, a small negative sliver.
	if rep.SameDayFrac+rep.NotBeforeGap.At(4)-rep.NotBeforeGap.At(0) < 0.3 {
		t.Errorf("fresh-gap mass too small: same-day %.3f", rep.SameDayFrac)
	}
	if rep.Beyond1000Frac < 0.05 || rep.Beyond1000Frac > 0.5 {
		t.Errorf("beyond-1000-days fraction = %.3f", rep.Beyond1000Frac)
	}
	if rep.NegativeGapFrac < 0.001 || rep.NegativeGapFrac > 0.15 {
		t.Errorf("negative gap fraction = %.3f", rep.NegativeGapFrac)
	}
}

func TestKeySharingShape(t *testing.T) {
	d := dataset(t)
	rep := d.KeySharing()
	// Paper: 47% of invalid certs share a key; Lancom's single key holds
	// 6.5% of all invalid certs.
	if rep.SharingInvalidFrac < 0.25 || rep.SharingInvalidFrac > 0.75 {
		t.Errorf("invalid key-sharing fraction = %.3f", rep.SharingInvalidFrac)
	}
	if rep.TopKeyInvalidShare < 0.02 || rep.TopKeyInvalidShare > 0.2 {
		t.Errorf("top invalid key share = %.3f", rep.TopKeyInvalidShare)
	}
	if rep.SharingInvalidFrac <= rep.SharingValidFrac {
		t.Errorf("invalid certs must share keys more: %.3f vs %.3f",
			rep.SharingInvalidFrac, rep.SharingValidFrac)
	}
	// Every share curve must dominate y=x.
	for _, p := range rep.InvalidCurve {
		if p.Y < p.X-1e-9 {
			t.Fatalf("invalid share curve below diagonal at %+v", p)
		}
	}
}

func TestTopIssuersTable(t *testing.T) {
	d := dataset(t)
	rep := d.Issuers(5)
	if len(rep.TopValid) != 5 || len(rep.TopInvalid) != 5 {
		t.Fatalf("top-5 lists: %d valid, %d invalid", len(rep.TopValid), len(rep.TopInvalid))
	}
	// Valid head must be a known CA (Zipf rank 1: Go Daddy).
	if rep.TopValid[0].Label != "Go Daddy Secure Certification Authority" {
		t.Errorf("top valid issuer = %q", rep.TopValid[0].Label)
	}
	// Invalid list must feature the paper's device vendors.
	found := map[string]bool{}
	for _, item := range rep.TopInvalid {
		found[item.Label] = true
	}
	for _, want := range []string{"www.lancom-systems.de", "192.168.1.1"} {
		if !found[want] {
			t.Errorf("top invalid issuers missing %q: %v", want, rep.TopInvalid)
		}
	}
}

func TestIssuerKeyDiversity(t *testing.T) {
	d := dataset(t)
	rep := d.Issuers(5)
	// Paper: 5 valid signing keys cover half of valid certs; invalid parent
	// keys are vastly more numerous relative to their population.
	if rep.ValidKeysForHalf > 8 {
		t.Errorf("valid keys for half = %d", rep.ValidKeysForHalf)
	}
	// The paper finds 1.7M invalid parent keys vs 1,477 valid signing keys:
	// per-device issuers (PlayBook MACs) swamp the CA population. At
	// fixture scale the absolute counts are small, so check that invalid
	// parent keys are numerous and that no small set covers them.
	if rep.InvalidParentKeys < 25 {
		t.Errorf("invalid parent keys = %d, want many", rep.InvalidParentKeys)
	}
	if rep.InvalidTop5KeyCoverage > 0.9 {
		t.Errorf("invalid top-5 key coverage = %.3f, want well below 1", rep.InvalidTop5KeyCoverage)
	}
}

func TestHostDiversityShape(t *testing.T) {
	d := dataset(t)
	rep := d.HostDiversity()
	// Paper Figure 7: most certs on one IP; invalid p99 ≈ 2, valid p99 ≈ 11,
	// with a long valid tail (CA certs served everywhere).
	if frac := rep.InvalidAvgIPs.At(1); frac < 0.9 {
		t.Errorf("invalid certs on <=1 IP = %.3f", frac)
	}
	if p99i, p99v := rep.InvalidAvgIPs.Percentile(0.99), rep.ValidAvgIPs.Percentile(0.99); p99i >= p99v {
		t.Errorf("invalid p99 (%.1f) not below valid p99 (%.1f)", p99i, p99v)
	}
	if rep.MaxIPsForValidCert < 50 {
		t.Errorf("no widely-replicated valid cert: max %d IPs", rep.MaxIPsForValidCert)
	}
	if rep.OverTwoIPsInvalidFrac < 0.001 || rep.OverTwoIPsInvalidFrac > 0.1 {
		t.Errorf("invalid certs on >2 IPs = %.4f (paper: 1.6%%)", rep.OverTwoIPsInvalidFrac)
	}
}

func TestASDiversityShape(t *testing.T) {
	d := dataset(t)
	rep := d.ASDiversity(5)
	// Paper: 18% of invalid certs come from one AS (Deutsche Telekom).
	if rep.TopASInvalidShare < 0.08 || rep.TopASInvalidShare > 0.4 {
		t.Errorf("top AS invalid share = %.3f", rep.TopASInvalidShare)
	}
	if len(rep.TopInvalidASes) == 0 || rep.TopInvalidASes[0].Label != "#3320 Deutsche Telekom AG (DEU)" {
		t.Errorf("top invalid AS = %v", rep.TopInvalidASes)
	}
	// Invalid concentrates into fewer ASes than valid for 70% coverage.
	if rep.ASesFor70Invalid >= rep.ASesFor70Valid {
		t.Errorf("invalid needs %d ASes for 70%%, valid %d — wrong order",
			rep.ASesFor70Invalid, rep.ASesFor70Valid)
	}
	// Table 2: invalid overwhelmingly transit/access (paper 94.1%).
	if got := rep.InvalidByType[netsim.TransitAccess]; got < 0.8 {
		t.Errorf("invalid transit/access share = %.3f", got)
	}
	if got := rep.ValidByType[netsim.Content]; got < 0.2 {
		t.Errorf("valid content share = %.3f", got)
	}
	if out := FormatASTypeTable(rep); len(out) == 0 {
		t.Error("empty AS type table")
	}
}

func TestDeviceTypesTable(t *testing.T) {
	d := dataset(t)
	rows := d.DeviceTypes(50)
	if len(rows) < 4 {
		t.Fatalf("device classes found: %d", len(rows))
	}
	byClass := map[string]float64{}
	var total float64
	for _, r := range rows {
		byClass[r.Class] = r.Fraction
		total += r.Fraction
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("fractions sum to %.4f", total)
	}
	// Paper Table 4: routers/modems dominate (45.3%), unknown second (32%).
	if rows[0].Class != ClassRouter {
		t.Errorf("largest class = %q, want router", rows[0].Class)
	}
	if byClass[ClassRouter] < 0.3 {
		t.Errorf("router share = %.3f", byClass[ClassRouter])
	}
	if byClass[ClassUnknown] < 0.05 {
		t.Errorf("unknown share = %.3f", byClass[ClassUnknown])
	}
}

func TestScanDiscrepancy(t *testing.T) {
	d := dataset(t)
	days := d.CoScanDays()
	if len(days) == 0 {
		t.Fatal("no co-scan days")
	}
	rep := d.ScanDiscrepancy(days[0])
	if rep.UMichHosts == 0 || rep.Rapid7Hosts == 0 {
		t.Fatalf("empty scans on co-scan day: %d / %d", rep.UMichHosts, rep.Rapid7Hosts)
	}
	// Rapid7's blacklist is ~5x bigger, so its scan must be smaller.
	if rep.Rapid7Deficit() < 0.02 {
		t.Errorf("Rapid7 deficit = %.3f", rep.Rapid7Deficit())
	}
	if len(rep.PerSlash8) == 0 {
		t.Fatal("no per-/8 rows")
	}
	// Missing hosts must be spread over the space, not confined to one /8.
	withUnique := 0
	for _, row := range rep.PerSlash8 {
		if row.UMichOnlyFrac > 0 || row.Rapid7OnlyFrac > 0 {
			withUnique++
		}
	}
	if withUnique < len(rep.PerSlash8)/4 {
		t.Errorf("unique hosts confined to %d/%d of /8s", withUnique, len(rep.PerSlash8))
	}
}

func TestBlacklistAttribution(t *testing.T) {
	d := dataset(t)
	rep := d.BlacklistAttribution()
	if rep.CoScanDays == 0 {
		t.Fatal("no co-scan days")
	}
	// Rapid7's blacklist is bigger: more prefixes always-missing from its
	// scans than from UMich's (paper: 11,624 vs 1,906).
	if rep.PrefixesMissingFromRapid7 <= rep.PrefixesMissingFromUMich {
		t.Errorf("missing-prefix counts: R7 %d vs UM %d — wrong order",
			rep.PrefixesMissingFromRapid7, rep.PrefixesMissingFromUMich)
	}
	// Blacklisting must explain the majority of one-scan-only hosts
	// (paper: 74.0% and 62.6%).
	if rep.ExplainedUMichOnly < 0.3 {
		t.Errorf("UMich-only explained = %.3f", rep.ExplainedUMichOnly)
	}
}

func TestClassifyDeviceRules(t *testing.T) {
	cases := []struct {
		issuerCN, subjectCN, want string
	}{
		{"www.lancom-systems.de", "LANCOM 1781A", ClassRouter},
		{"remotewd.com", "WD2GO 123456", ClassStorage},
		{"192.168.1.1", "192.168.1.1", ClassRouter},
		{"SecureGate CA", "vpn 000123", ClassVPN},
		{"VMware", "esx 000042", ClassRemoteAdmin},
		{"PerimeterOS", "fw 000009", ClassFirewall},
		{"IPCAM", "IPCAM", ClassIPCamera},
		{"Embedded HTTPS Server", "Embedded HTTPS Server", ClassOther},
		{"xj9-qqq", "gizmo", ClassUnknown},
		{"", "", ClassUnknown},
		{"203.0.113.7", "203.0.113.7", ClassRouter}, // bare IP CN
	}
	for _, tc := range cases {
		c := &x509lite.Certificate{
			Issuer:  x509lite.Name{CommonName: tc.issuerCN},
			Subject: x509lite.Name{CommonName: tc.subjectCN},
		}
		if got := ClassifyDevice(c); got != tc.want {
			t.Errorf("ClassifyDevice(%q, %q) = %q, want %q", tc.issuerCN, tc.subjectCN, got, tc.want)
		}
	}
}

func TestLooksLikeIPv4(t *testing.T) {
	yes := []string{"1.2.3.4", "192.168.1.1", "255.255.255.255"}
	no := []string{"", "fritz.box", "1.2.3", "1.2.3.4.5", "a.b.c.d", "1..2.3"}
	for _, s := range yes {
		if !looksLikeIPv4(s) {
			t.Errorf("looksLikeIPv4(%q) = false", s)
		}
	}
	for _, s := range no {
		if looksLikeIPv4(s) {
			t.Errorf("looksLikeIPv4(%q) = true", s)
		}
	}
}

func TestSlash24Discrepancy(t *testing.T) {
	d := dataset(t)
	days := d.CoScanDays()
	if len(days) == 0 {
		t.Fatal("no co-scan days")
	}
	rep := d.Slash24Discrepancy(days[0])
	if rep.TotalSlash24s == 0 {
		t.Fatal("no /24s observed")
	}
	if rep.UMichOnly24s+rep.Rapid7Only24s+rep.MixedSlash24s != rep.TotalSlash24s {
		t.Error("/24 partition does not sum")
	}
	// Rapid7's bigger blacklist leaves more /24s visible only to UMich.
	if rep.UMichOnly24s <= rep.Rapid7Only24s {
		t.Errorf("UMich-only /24s (%d) not above Rapid7-only (%d)", rep.UMichOnly24s, rep.Rapid7Only24s)
	}
}
